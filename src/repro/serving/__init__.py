"""High-throughput serving runtime for LUTBoost-converted models.

The online counterpart of the offline pipeline: ``compiler`` traces a
converted model into an SSA dataflow graph (feed-forward, residual and
attention topologies) and lowers it to a flat :class:`KernelPlan` (packed
codebooks + PSum LUTs, a slot-addressed fused-kernel step list),
``engine`` executes plans and caches them LRU-style, ``batcher`` fuses
single requests into dynamic micro-batches drained by a thread pool,
``server`` is the future-based front-end with admission control and
graceful drain, ``record`` fuses a plan's step list into one composite
megastep replayed as a compiled straight-line closure (no per-step
Python on the hot path), ``autotune`` hill-climbs the batching knobs
from recent throughput, and ``metrics`` tracks throughput / latency
percentiles
(cumulative and over a sliding :class:`MetricsWindow`) alongside the
simulator's predicted LUT-DLA cycles. :mod:`repro.cluster` stacks
multi-process sharding and a TCP front-end on top of these pieces.
"""

from .autotune import Autotuner
from .batcher import AdmissionError, MicroBatcher
from .compiler import CompileError, KernelPlan, KernelStep, compile_model
from .engine import PlanCache, ServingEngine, execute_plan
from .metrics import CyclePredictor, MetricsWindow, ServingMetrics, percentile
from .record import check_composite, fuse_plan
from .server import LUTServer, ServingConfig

__all__ = [
    "CompileError",
    "KernelStep",
    "KernelPlan",
    "compile_model",
    "execute_plan",
    "PlanCache",
    "ServingEngine",
    "fuse_plan",
    "check_composite",
    "AdmissionError",
    "MicroBatcher",
    "Autotuner",
    "CyclePredictor",
    "MetricsWindow",
    "ServingMetrics",
    "percentile",
    "ServingConfig",
    "LUTServer",
]
