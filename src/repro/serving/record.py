"""Plan recording: fold a step list into one compiled composite megastep.

``execute_plan`` walks a :class:`~repro.serving.compiler.KernelPlan`'s
step list through Python — per step, per call, per decode token. For the
generation hot path that dispatch is pure overhead: the decode plan runs
the same ~40 steps every tick. :func:`fuse_plan` removes it by *recording*
the plan once: the whole step list is folded into a single ``composite``
:class:`KernelStep` whose inner steps compile (lazily, on first
execution) into one straight-line Python function. Elementwise chains
(residual adds, reshapes, GELU, baked constants) inline as direct numpy
expressions, LUT projections inline as their three-kernel pipeline
(subspace split → batched argmin-encode → LUT gather) with the packed
block views bound as locals, and the ``kv_append`` → ``cached_attention``
tail runs back to back with the shared :mod:`repro.vq.kernels` bound
directly — no ``_KERNELS`` dict lookups, no argument-list building, no
per-step release loop. Because every generated line calls (or textually
mirrors) the exact kernel the interpreter would have called, a recorded
plan is bit-identical to its unrecorded source at every precision — the
contract :func:`check_composite` verifies kernel by kernel.

The compiled closure reads external slots (the request batch, bound
extras such as KV caches) from the shared slot file and writes back only
the slots something outside the composite observes: tap slots and the
output slot. That is what lets :class:`repro.gen.record.DecodeRecording`
preallocate one slot file and replay N decode ticks through one function
call per tick with no per-step Python at all.

Profiled execution keeps per-kernel attribution without giving up the
closure: :func:`run_composite_timed` compiles a *timed* twin of the
closure whose generated source brackets every inner step with clock
reads and files the delta under that step's own
:func:`~repro.obs.profiler.step_label` — so a recorded plan reports the
same ``lut_gemm:<module>`` / ``cached_attention`` rows as its unrecorded
source (``StepProfiler.versus_predicted`` and the drift detector keep
lining up) at near-production speed. :func:`run_composite_steps` remains
as the interpreting fallback and the reference for
:func:`check_composite`.
"""

from __future__ import annotations

import numpy as np

from ..vq import kernels
from ..vq.codebook import split_subspaces
from ..vq.distances import batched_nearest_centroid
from ..vq.lut import gather_accumulate
from .compiler import KernelPlan, KernelStep

__all__ = ["fuse_plan", "run_composite", "run_composite_timed",
           "run_composite_steps", "check_composite"]


def fuse_plan(plan, label=None):
    """Return the recorded variant of ``plan``: one composite megastep.

    The composite's ``params["steps"]`` holds the original
    :class:`KernelStep` objects (shared, not copied — the recorded plan
    references the same packed blocks and dense weights, so publishing
    both variants through the plan store serialises every array once).
    Slot numbering, taps and extra inputs are unchanged; the fused plan
    drops into ``execute_plan`` wherever the original did. Fusing an
    already-fused plan returns it unchanged.
    """
    if any(step.kind == "composite" for step in plan.steps):
        return plan
    composite = KernelStep(
        "composite", inputs=(0,), out=plan.output_slot,
        steps=list(plan.steps),
        label=("recorded:%s" % plan.model_name) if label is None else label)
    return KernelPlan(
        [composite], plan.centroids, plan.tables, plan.layers, plan.v,
        plan.c, plan.metric, plan.precision, plan.input_shape,
        plan.num_slots, plan.output_slot, model_name=plan.model_name,
        tap_slots=dict(getattr(plan, "tap_slots", {}) or {}),
        extra_inputs=dict(getattr(plan, "extra_inputs", {}) or {}))


# ----------------------------------------------------------------------
# Codegen
# ----------------------------------------------------------------------

def _emit_step(index, step, env, lines):
    """Append the source lines computing ``v<out>`` for one inner step.

    Specialised kinds inline their numpy expression (or call the shared
    kernel with params pre-bound into ``env``); anything else falls back
    to the engine's generic kernel with the step object bound — still one
    direct call, just without textual inlining.
    """
    args = ["v%d" % slot for slot in step.inputs]
    out = "v%d" % step.out
    p = step.params
    kind = step.kind

    def bind(name, value):
        key = "p%d_%s" % (index, name)
        env[key] = value
        return key

    if kind == "lut_gemm" and p.get("op") == "linear":
        cb = bind("cb", p["centroids"])
        tb = bind("tb", p["table"])
        lines.append("_t = %s.reshape(-1, %d)" % (args[0], p["k"]))
        lines.append("_t, _ = _split(_t, %d)" % (p["centroids"].shape[2],))
        lines.append("_t = _encode(_t, %s, %r)" % (cb, p["metric"]))
        lines.append("_t = _gather(%s, _t)" % (tb,))
        if p["bias"] is not None:
            lines.append("_t = _t + %s" % (bind("bias", p["bias"]),))
        lines.append("%s = _t.reshape(%s.shape[:-1] + (%d,))"
                     % (out, args[0], p["n_out"]))
    elif kind == "gemm":
        lines.append("%s = %s @ %s" % (out, args[0], bind("w", p["weight"])))
        if p["bias"] is not None:
            lines.append("%s = %s + %s" % (out, out, bind("b", p["bias"])))
    elif kind == "embedding":
        lines.append("%s = _emb(%s, %s)"
                     % (out, bind("w", p["weight"]), args[0]))
    elif kind == "layernorm":
        lines.append("%s = _ln(%s, %s, %s, %s)"
                     % (out, args[0], bind("w", p["weight"]),
                        bind("b", p["bias"]), bind("eps", p["eps"])))
    elif kind in ("add", "sub", "mul"):
        op = {"add": "+", "sub": "-", "mul": "*"}[kind]
        if len(args) == 2:
            lines.append("%s = %s %s %s" % (out, args[0], op, args[1]))
        else:
            const = bind("c", p["const"])
            left, right = ((const, args[0]) if p.get("reverse")
                           else (args[0], const))
            lines.append("%s = %s %s %s" % (out, left, op, right))
    elif kind == "reshape":
        lines.append("%s = %s.reshape((%s.shape[0],) + %r)"
                     % (out, args[0], args[0], tuple(p["tail"])))
    elif kind == "flatten":
        lines.append("%s = %s.reshape(%s.shape[0], -1)"
                     % (out, args[0], args[0]))
    elif kind == "transpose":
        lines.append("%s = %s.transpose(%r)"
                     % (out, args[0], tuple(p["axes"])))
    elif kind == "gelu":
        lines.append("%s = _gelu(%s)" % (out, args[0]))
    elif kind == "relu":
        lines.append("%s = _np.maximum(%s, 0.0)" % (out, args[0]))
    elif kind == "tanh":
        lines.append("%s = _np.tanh(%s)" % (out, args[0]))
    elif kind == "kv_append":
        lines.append("%s = _kva(%s, %s, %s)" % (out, *args))
    elif kind == "cached_attention":
        lines.append("%s = _catt(%s, %s, %s, %s, %s)"
                     % (out, args[0], args[1], args[2], args[3],
                        bind("scale", p["scale"])))
    elif kind == "attention_scores":
        fn = "_scores_stable" if p.get("stable") else "_scores"
        lines.append("%s = %s(%s, %s, %s)"
                     % (out, fn, args[0], args[1],
                        bind("scale", p["scale"])))
    elif kind == "matmul" and len(args) == 2:
        fn = "_context_stable" if p.get("stable") else "_context"
        lines.append("%s = %s(%s, %s)" % (out, fn, args[0], args[1]))
    elif kind == "softmax":
        lines.append("%s = _softmax(%s, %r)" % (out, args[0], p["axis"]))
    elif kind == "causal_softmax":
        lines.append("%s = _csoftmax(%s)" % (out, args[0]))
    elif kind == "const":
        lines.append("%s = %s" % (out, bind("value", p["value"])))
    else:
        # conv2d, pools, batchnorm, const-matmul, ... — one direct call
        # into the engine's kernel table with the step object bound.
        step_name = bind("step", step)
        lines.append("%s = _kernels[%r](%s%s)"
                     % (out, kind, step_name,
                        "".join(", " + a for a in args)))


def _compile_composite(plan, step, debug=False, timed=False):
    """Compile one composite step into a straight-line closure.

    The closure reads slots written outside the composite (slot 0, bound
    extras) from the slot file, keeps everything else in locals, releases
    locals at their recorded last use, and writes back only tap slots and
    the plan output. With ``debug=True`` the signature becomes
    ``run(slots, trace)`` and every inner step also appends its result to
    ``trace`` — the hook :func:`check_composite` uses to name the first
    diverging kernel. With ``timed=True`` the signature becomes
    ``run(slots, record, clock)`` and every inner step's compute lines
    are bracketed by clock reads, the delta filed under the step's
    :func:`~repro.obs.profiler.step_label` — identical arithmetic, plus
    two clock calls per step.
    """
    from ..obs.profiler import step_label
    from .engine import _KERNELS

    inner = step.params["steps"]
    store = set((getattr(plan, "tap_slots", {}) or {}).values())
    store.add(plan.output_slot)
    env = {
        "_np": np,
        "_split": split_subspaces,
        "_encode": batched_nearest_centroid,
        "_gather": gather_accumulate,
        "_emb": kernels.embedding_gather,
        "_ln": kernels.layer_norm,
        "_gelu": kernels.gelu,
        "_kva": kernels.kv_append,
        "_catt": kernels.cached_attention,
        "_scores": kernels.attention_scores,
        "_scores_stable": kernels.attention_scores_stable,
        "_context": kernels.attention_context,
        "_context_stable": kernels.attention_context_stable,
        "_softmax": kernels.softmax,
        "_csoftmax": kernels.causal_softmax,
        "_kernels": _KERNELS,
    }
    lines = []
    # Slots the composite reads before any inner step writes them come
    # from the slot file (the request batch, bound extras).
    written = set()
    external = []
    for s in inner:
        for slot in s.inputs:
            if slot not in written and slot not in external:
                external.append(slot)
        written.add(s.out)
    for slot in sorted(external):
        lines.append("v%d = slots[%d]" % (slot, slot))
    for index, s in enumerate(inner):
        if timed:
            lines.append("_t0 = clock()")
        _emit_step(index, s, env, lines)
        if timed:
            lines.append("record(%r, %r, clock() - _t0)"
                         % (plan.model_name, step_label(plan, s)))
        if s.out in store:
            lines.append("slots[%d] = v%d" % (s.out, s.out))
        if debug:
            lines.append("trace.append(v%d)" % (s.out,))
        for slot in s.release:
            # Locals only: the slot file keeps its external bindings (a
            # recorded decode loop reuses them across ticks).
            lines.append("v%d = None" % (slot,))
    if debug:
        signature = "slots, trace"
    elif timed:
        signature = "slots, record, clock"
    else:
        signature = "slots"
    src = "def _run(%s):\n%s" % (
        signature, "".join("    %s\n" % line for line in lines) or "    pass\n")
    namespace = {}
    label = step.params.get("label") or "composite"
    exec(compile(src, "<%s>" % label, "exec"), env, namespace)  # noqa: S102
    return namespace["_run"]


def run_composite(plan, step, slots):
    """Execute one composite step's compiled closure over ``slots``.

    Compilation is lazy and cached on the step object (an attribute, so
    it never serialises through the plan store; a worker that rebuilds
    the plan from a manifest recompiles on first use). Laziness also
    guarantees the closure binds the step's *final* param arrays — fuse
    after any table sharing or rebinding, never before.
    """
    run = getattr(step, "_compiled", None)
    if run is None:
        run = step._compiled = _compile_composite(plan, step)
    run(slots)


def run_composite_timed(plan, step, slots, profiler):
    """Execute the composite through its *timed* compiled closure.

    Per-kernel profiler rows (the drift detector's measurement feed) at
    closure speed: the profiled decode path no longer falls back to full
    interpretation. The timed closure is cached separately from the
    plain one; both bind the step's final param arrays lazily.
    """
    run = getattr(step, "_compiled_timed", None)
    if run is None:
        run = step._compiled_timed = _compile_composite(plan, step,
                                                        timed=True)
    run(slots, profiler.record, profiler.clock)


def run_composite_steps(plan, step, slots, profiler=None):
    """Interpret a composite's inner steps one by one over ``slots``.

    The profiled twin of :func:`run_composite`: identical arithmetic
    (same kernels, same order), but each inner step is timed and filed
    under its own label, so recorded plans profile exactly like their
    unrecorded sources. Also the fallback for executing composites
    without compiling them.
    """
    from ..obs.profiler import step_label
    from .engine import _KERNELS

    if profiler is None:
        for s in step.params["steps"]:
            args = [slots[i] for i in s.inputs]
            slots[s.out] = _KERNELS[s.kind](s, *args)
            for i in s.release:
                slots[i] = None
        return
    clock = profiler.clock
    for s in step.params["steps"]:
        args = [slots[i] for i in s.inputs]
        t0 = clock()
        slots[s.out] = _KERNELS[s.kind](s, *args)
        profiler.record(plan.model_name, step_label(plan, s), clock() - t0)
        for i in s.release:
            slots[i] = None


# ----------------------------------------------------------------------
# Bit-exactness diagnosis
# ----------------------------------------------------------------------

def _bitwise_equal(a, b):
    a = np.asarray(a)
    b = np.asarray(b)
    return (a.dtype == b.dtype and a.shape == b.shape
            and a.tobytes() == b.tobytes())


def check_composite(plan, batch, extras=None):
    """Verify a fused plan kernel by kernel; name the first divergence.

    Runs the plan twice on ``batch`` (+ ``extras``): once interpreting
    every inner step through the engine's kernel table, once through the
    compiled closure in debug mode, each against its own *copy* of the
    extras (``kv_append`` mutates caches in place). Returns ``None`` when
    every inner step's result is bit-identical, else the
    :func:`~repro.obs.profiler.step_label` of the first diverging step —
    so a fusion regression fails CI with a named kernel, not a generic
    token mismatch.
    """
    from .engine import _KERNELS

    from ..obs.profiler import step_label

    extras = extras or {}

    def fresh_slots():
        slots = [None] * plan.num_slots
        slots[0] = np.asarray(batch, dtype=plan.dtype)
        for name, slot in (getattr(plan, "extra_inputs", {}) or {}).items():
            value = extras[name]
            slots[slot] = (value.copy()
                           if isinstance(value, np.ndarray) else value)
        return slots

    for step in plan.steps:
        if step.kind != "composite":
            continue
        inner = step.params["steps"]
        # Reference: interpret, capturing each result as produced (no
        # releases — slot reuse must not mask an intermediate mismatch).
        slots = fresh_slots()
        expected = []
        for s in inner:
            args = [slots[i] for i in s.inputs]
            slots[s.out] = _KERNELS[s.kind](s, *args)
            expected.append(slots[s.out])
        # Candidate: the compiled closure with a per-step trace.
        trace = []
        _compile_composite(plan, step, debug=True)(fresh_slots(), trace)
        for s, want, got in zip(inner, expected, trace):
            if not _bitwise_equal(want, got):
                return step_label(plan, s)
    return None
