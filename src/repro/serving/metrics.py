"""Serving telemetry: throughput, latency percentiles, predicted cycles.

:class:`ServingMetrics` aggregates per-batch observations from the
micro-batcher. Beyond the usual p50/p90/p99 request latencies it can carry
a :class:`CyclePredictor`, which replays each served batch size through the
cycle-accurate LUT-DLA simulator (:mod:`repro.sim`) — the Eq. (5) cost
model — so every summary reports the measured host latency next to what
the paper's accelerator would have spent on the identical workload.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from ..sim.engine import SimConfig, simulate_workloads

__all__ = ["CyclePredictor", "MetricsWindow", "ServingMetrics", "percentile"]


def percentile(values, p):
    """Nearest-rank percentile (p in [0, 100]) of a list of floats."""
    if not len(values):
        return 0.0
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    rank = min(len(ordered) - 1, max(0, int(np.ceil(p / 100.0 * len(ordered))) - 1))
    return float(ordered[rank])


class CyclePredictor:
    """Predicted LUT-DLA cycles/latency per served batch size.

    Wraps ``simulate_workloads`` over a plan's GEMM workloads; results are
    memoised per batch size since the simulator is deterministic.
    """

    def __init__(self, plan, sim_config=None):
        self.sim_config = sim_config or SimConfig()
        self._cache = {}
        self._lock = threading.Lock()
        self._plan = plan

    @property
    def plan(self):
        return self._plan

    @plan.setter
    def plan(self, plan):
        """Swap the predicted plan; the memo cache dies with the old one.

        A hot plan swap (new co-design point, recalibrated codebook)
        changes the workloads behind every cached batch size — keeping
        the memos would keep reporting the *old* plan's cycles forever
        (``ServingMetrics.reset()`` never cleared them). Clearing here
        ties cache validity to plan identity instead of metrics resets.
        """
        with self._lock:
            self._plan = plan
            self._cache.clear()

    def clear(self):
        """Drop the memoised cycle counts (they recompute on demand)."""
        with self._lock:
            self._cache.clear()

    def cycles(self, batch_size):
        """Total predicted LUT-DLA cycles for one batch of ``batch_size``."""
        batch_size = int(batch_size)
        with self._lock:
            if batch_size not in self._cache:
                _, total = simulate_workloads(
                    self._plan.workloads(batch_size), self.sim_config)
                self._cache[batch_size] = int(total)
            return self._cache[batch_size]

    def seconds(self, batch_size):
        """Predicted wall-clock seconds at the simulated clock frequency."""
        return self.cycles(batch_size) / self.sim_config.frequency_hz

    def breakdown(self, batch_size):
        """Per-LUT-layer predicted cycles for one batch: {layer: cycles}.

        Layer keys are the converted module's qualified name (e.g.
        ``blocks.0.attn.q_proj``), so the profile doubles as an AIWC-style
        workload characterization of the served topology — the per-layer
        rows the benchmark artifact records per commit.
        """
        workloads = self.plan.workloads(int(batch_size))
        results, _ = simulate_workloads(workloads, self.sim_config)
        return {w.name: int(r.total_cycles)
                for w, r in zip(workloads, results)}


class MetricsWindow:
    """Sliding window over the last ``maxlen`` completed batches.

    The cumulative :class:`ServingMetrics` answers "how did this
    deployment do overall"; the window answers "how is it doing *right
    now*" — the signal the cluster router and the autotuner act on.
    ``snapshot()`` is cheap, picklable, and self-contained, so per-shard
    windows can be compared across processes without sharing state.
    """

    def __init__(self, maxlen=64):
        self.maxlen = int(maxlen)
        self._rows = deque(maxlen=self.maxlen)  # (done_at, size, secs, lat)
        self._lock = threading.Lock()

    def record(self, batch_size, batch_seconds, latencies):
        mean_latency = (float(np.mean(latencies)) if len(latencies) else 0.0)
        with self._lock:
            self._rows.append((time.monotonic(), int(batch_size),
                               float(batch_seconds), mean_latency))

    def __len__(self):
        with self._lock:
            return len(self._rows)

    def clear(self):
        with self._lock:
            self._rows.clear()

    def snapshot(self):
        """Recent-traffic view: req/s, batch shape and pace over the window.

        ``requests_per_s`` divides the window's request count by its time
        span (first batch start to last batch end). ``seconds_per_request``
        is the measured service pace — the router's scale factor from
        predicted work to expected wall time on this shard.
        """
        with self._lock:
            rows = list(self._rows)
        if not rows:
            return {"batches": 0, "requests": 0, "requests_per_s": 0.0,
                    "mean_batch_size": 0.0, "mean_batch_seconds": 0.0,
                    "mean_latency_s": 0.0, "seconds_per_request": 0.0,
                    "span_s": 0.0}
        requests = sum(size for _, size, _, _ in rows)
        busy = sum(secs for _, _, secs, _ in rows)
        first_start = rows[0][0] - rows[0][2]
        span = max(rows[-1][0] - first_start, 1e-9)
        return {
            "batches": len(rows),
            "requests": requests,
            "requests_per_s": requests / span,
            "mean_batch_size": requests / len(rows),
            "mean_batch_seconds": busy / len(rows),
            "mean_latency_s": float(np.mean([lat for _, _, _, lat in rows])),
            "seconds_per_request": busy / max(requests, 1),
            "span_s": span,
        }


class ServingMetrics:
    """Threadsafe accumulator for the serving runtime's observations."""

    def __init__(self, predictor=None, window=64):
        self.predictor = predictor
        self.window = MetricsWindow(window)
        self._lock = threading.Lock()
        self._latencies = []
        self._batch_sizes = []
        self._batch_seconds = []
        self._started_at = time.monotonic()
        self._last_done_at = self._started_at

    # ------------------------------------------------------------------
    def record_batch(self, batch_size, batch_seconds, latencies):
        """Record one completed batch (the batcher's ``on_batch`` hook).

        Only appends observations — cycle prediction (which runs the tile
        simulator on first sight of a batch size) is deferred to
        :meth:`summary` so the serving hot path never waits on it.
        """
        with self._lock:
            now = time.monotonic()
            if not self._batch_sizes:
                # Start the throughput window at the first batch's start,
                # not at construction — idle warm-up time is not traffic.
                self._started_at = now - float(batch_seconds)
            self._batch_sizes.append(int(batch_size))
            self._batch_seconds.append(float(batch_seconds))
            self._latencies.extend(float(lat) for lat in latencies)
            self._last_done_at = now
        self.window.record(batch_size, batch_seconds, latencies)

    def reset(self):
        with self._lock:
            self._latencies = []
            self._batch_sizes = []
            self._batch_seconds = []
            self._started_at = time.monotonic()
            self._last_done_at = self._started_at
        self.window.clear()

    # ------------------------------------------------------------------
    @property
    def request_count(self):
        with self._lock:
            return len(self._latencies)

    @property
    def batch_count(self):
        with self._lock:
            return len(self._batch_sizes)

    def summary(self):
        """One dict with the numbers a dashboard would want.

        Latencies are reported in milliseconds; ``requests_per_s`` uses the
        window from construction/reset to the last completed batch.
        ``predicted_*`` keys appear when a :class:`CyclePredictor` is
        attached — ``predicted_ms`` is the simulator's per-batch latency
        and ``measured_over_predicted`` the measured/predicted ratio, the
        serving-time form of the paper's predicted-vs-measured comparison.
        """
        with self._lock:
            latencies = list(self._latencies)
            sizes = list(self._batch_sizes)
            seconds = list(self._batch_seconds)
            window = max(self._last_done_at - self._started_at, 1e-12)
        predicted = ([self.predictor.cycles(size) for size in sizes]
                     if self.predictor is not None else [])
        count = len(latencies)
        out = {
            "requests": count,
            "batches": len(sizes),
            "mean_batch_size": float(np.mean(sizes)) if sizes else 0.0,
            "requests_per_s": count / window if count else 0.0,
            "mean_ms": float(np.mean(latencies)) * 1e3 if count else 0.0,
            "p50_ms": percentile(latencies, 50) * 1e3,
            "p90_ms": percentile(latencies, 90) * 1e3,
            "p99_ms": percentile(latencies, 99) * 1e3,
            "mean_batch_ms": float(np.mean(seconds)) * 1e3 if seconds else 0.0,
        }
        if predicted:
            freq = self.predictor.sim_config.frequency_hz
            mean_cycles = float(np.mean(predicted))
            out["predicted_cycles"] = mean_cycles
            out["predicted_ms"] = mean_cycles / freq * 1e3
            if out["mean_batch_ms"] > 0:
                out["measured_over_predicted"] = (
                    out["mean_batch_ms"] / out["predicted_ms"]
                    if out["predicted_ms"] else float("inf"))
        return out

    def report(self, title="serving metrics"):
        """Render :meth:`summary` as an aligned text table."""
        from ..evaluation.report import format_serving_summary

        return format_serving_summary(self.summary(), title=title)
