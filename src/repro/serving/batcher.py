"""Dynamic micro-batching queue with a thread worker pool.

Requests arrive one sample at a time through ``submit()`` (a
``concurrent.futures.Future`` comes back immediately); worker threads drain
the queue into batches bounded by ``max_batch_size`` and ``max_wait_s`` —
the first request of a batch waits at most ``max_wait_s`` for companions
before the batch is dispatched, the classic dynamic-batching contract.

numpy releases the GIL inside the fused kernels, so multiple worker
threads genuinely overlap batch execution on multi-core hosts. Admission
control caps the number of queued-but-unscheduled requests: beyond
``max_pending`` the queue is considered overloaded and ``submit`` raises
:class:`AdmissionError` instead of letting latency grow without bound.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import deque
from concurrent.futures import Future

import numpy as np

from ..obs.metrics import DEFAULT_COUNT_BUCKETS, METRICS
from ..obs.tracer import TRACE

__all__ = ["AdmissionError", "MicroBatcher"]


class AdmissionError(RuntimeError):
    """The request queue is full (or the batcher is shut down)."""


class _Request:
    __slots__ = ("payload", "future", "enqueued_at", "trace")

    def __init__(self, payload):
        self.payload = payload
        self.future = Future()
        self.enqueued_at = time.monotonic()
        # The submitter's trace context, captured here because the batch
        # executes on a worker thread that inherits no contextvars; the
        # per-request span recorded at resolve time re-joins this trace.
        self.trace = TRACE.context() if TRACE.enabled else None


class MicroBatcher:
    """Queue single requests, execute them in dynamic micro-batches.

    Parameters
    ----------
    run_batch:
        Callable mapping a stacked ``(batch, *input_shape)`` array to a
        ``(batch, ...)`` result array; row ``i`` of the result resolves the
        future of request ``i``.
    max_batch_size:
        Hard upper bound on requests fused into one batch.
    max_wait_s:
        How long the oldest queued request may wait for companions before
        its batch is dispatched anyway.
    workers:
        Worker threads draining the queue (>= 2 overlaps batches).
    max_pending:
        Admission-control bound on queued requests.
    on_batch:
        Optional callback ``(batch_size, batch_seconds, latencies)`` invoked
        after each batch completes — the metrics hook.
    name:
        Optional label under which this batcher reports to the process
        metrics registry (queue depth gauge, admission counters, queue-wait
        and batch-size histograms). Unnamed batchers skip the registry
        entirely — bare unit-test batchers pay nothing.
    """

    def __init__(self, run_batch, max_batch_size=64, max_wait_s=0.002,
                 workers=2, max_pending=1024, on_batch=None, name=None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self._run_batch = run_batch
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.max_pending = int(max_pending)
        self.on_batch = on_batch
        self.name = name
        self._m_requests = self._m_rejected = None
        self._m_queue_wait = self._m_batch_size = None
        if name is not None:
            self._m_requests = METRICS.counter(
                "repro_batcher_requests_total", "Requests submitted",
                labels=("batcher",)).labels(batcher=name)
            self._m_rejected = METRICS.counter(
                "repro_batcher_rejected_total", "Requests refused admission",
                labels=("batcher",)).labels(batcher=name)
            self._m_queue_wait = METRICS.histogram(
                "repro_batcher_queue_wait_ms",
                "Queue wait before batch dispatch (ms)",
                labels=("batcher",)).labels(batcher=name)
            self._m_batch_size = METRICS.histogram(
                "repro_batcher_batch_size", "Fused batch sizes",
                labels=("batcher",),
                buckets=DEFAULT_COUNT_BUCKETS).labels(batcher=name)
            # Depth as a function gauge: scrapes read the live queue via a
            # weakref so a closed batcher never pins itself in the registry.
            ref = weakref.ref(self)

            def _depth():
                batcher = ref()
                return float(batcher.pending()) if batcher is not None else 0.0

            METRICS.gauge(
                "repro_batcher_queue_depth", "Requests queued, unscheduled",
                labels=("batcher",)).labels(batcher=name).set_function(_depth)
        self._queue = deque()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._drained = threading.Condition(self._lock)
        self._inflight = 0
        self._accepting = True
        self._running = True
        self._threads = [
            threading.Thread(target=self._worker, name="lut-serve-%d" % i,
                             daemon=True)
            for i in range(int(workers))
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    def submit(self, x):
        """Enqueue one request; returns a Future resolving to its output.

        The payload dtype is preserved — the batch executor owns any
        precision policy (the server pre-casts to its plan's dtype).
        """
        request = _Request(np.asarray(x))
        if self._m_requests is not None:
            self._m_requests.inc()
        with self._lock:
            if not self._accepting:
                if self._m_rejected is not None:
                    self._m_rejected.inc()
                raise AdmissionError("batcher is shut down")
            if len(self._queue) >= self.max_pending:
                if self._m_rejected is not None:
                    self._m_rejected.inc()
                raise AdmissionError(
                    "queue full (%d pending requests)" % len(self._queue))
            self._queue.append(request)
            # Wake a worker only on the empty->non-empty transition: workers
            # already collecting a batch drain the queue themselves (or wake
            # at their max_wait deadline), and skipping the redundant
            # notifies avoids context-switch churn under burst load.
            if len(self._queue) == 1:
                self._ready.notify()
        return request.future

    def pending(self):
        """Requests queued but not yet scheduled into a batch."""
        with self._lock:
            return len(self._queue)

    def inflight(self):
        """Requests scheduled into a batch but not yet resolved."""
        with self._lock:
            return self._inflight

    def set_tuning(self, max_batch_size=None, max_wait_s=None):
        """Adjust the batching knobs of a live batcher (autotuner hook).

        Workers re-read both values at every batch they collect, so the
        new settings apply from the next batch on; values are clamped to
        sane bounds rather than validated.
        """
        if max_batch_size is not None:
            self.max_batch_size = max(1, int(max_batch_size))
        if max_wait_s is not None:
            self.max_wait_s = max(0.0, float(max_wait_s))

    def close(self, timeout=5.0, drain=False):
        """Stop admission and shut the worker pool down.

        With ``drain=True`` (graceful): new ``submit`` calls are refused
        immediately, but every already-queued request is executed and its
        future resolved before the workers exit — nothing in flight is
        dropped. Without it, queued-but-unscheduled requests fail with
        :class:`AdmissionError` (in-flight batches still complete). Either
        way the call returns once the workers are joined; ``timeout``
        bounds both the drain wait and each join.
        """
        deadline = time.monotonic() + timeout
        with self._lock:
            self._accepting = False
            if drain:
                while self._running and (self._queue or self._inflight):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._drained.wait(min(remaining, 0.05))
            self._running = False
            self._ready.notify_all()
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()) + 0.1)
        with self._lock:
            leftovers = list(self._queue)
            self._queue.clear()
        for request in leftovers:
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(
                    AdmissionError("batcher shut down before execution"))

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------
    def _collect(self):
        """Block for the next batch; returns [] on shutdown."""
        with self._lock:
            while self._running and not self._queue:
                self._ready.wait(0.05)
            if not self._queue:
                return []
            batch = [self._queue.popleft()]
            deadline = time.monotonic() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                if self._queue:
                    batch.append(self._queue.popleft())
                    continue
                remaining = deadline - time.monotonic()
                # No point waiting for companions once admission is closed
                # (a draining shutdown has nothing left to submit).
                if remaining <= 0 or not self._running or not self._accepting:
                    break
                self._ready.wait(remaining)
            if self._queue:
                # More than one batch is backlogged; hand the surplus to an
                # idle worker now instead of letting it sleep out its poll.
                self._ready.notify()
            self._inflight += len(batch)
            return batch

    def _settle(self, taken):
        """Retire ``taken`` scheduled requests; wake a draining closer."""
        with self._lock:
            self._inflight -= taken
            if not self._queue and not self._inflight:
                self._drained.notify_all()

    def _worker(self):
        while True:
            collected = self._collect()
            if not collected:
                return
            try:
                self._run_collected(collected)
            finally:
                self._settle(len(collected))

    def _trace_batch(self, batch, start, done):
        """Span per traced member: queue wait + execution, re-parented to
        the submitter's trace (the worker thread has no context of its
        own). Only runs when tracing is enabled at resolve time."""
        size = len(batch)
        for request in batch:
            if request.trace is None:
                continue
            TRACE.record_span(
                "batcher.request", request.enqueued_at, done,
                ctx=request.trace, cat="batcher", batch_size=size,
                queue_wait_ms=round((start - request.enqueued_at) * 1e3, 3))

    def _run_collected(self, collected):
        # Transition futures to RUNNING; a request whose cancel() won the
        # race is dropped here, and the rest can no longer be cancelled,
        # so set_result/set_exception below cannot raise InvalidStateError.
        batch = [request for request in collected
                 if request.future.set_running_or_notify_cancel()]
        if not batch:
            return
        start = time.monotonic()
        try:
            stacked = np.stack([request.payload for request in batch])
            results = self._run_batch(stacked)
        except BaseException as exc:  # resolve every waiter
            for request in batch:
                request.future.set_exception(exc)
            return
        done = time.monotonic()
        for i, request in enumerate(batch):
            request.future.set_result(results[i])
        if self._m_batch_size is not None:
            self._m_batch_size.observe(len(batch))
            observe = self._m_queue_wait.observe
            for request in batch:
                observe((start - request.enqueued_at) * 1e3)
        if TRACE.enabled:
            self._trace_batch(batch, start, done)
        if self.on_batch is not None:
            try:
                latencies = [done - request.enqueued_at
                             for request in batch]
                self.on_batch(len(batch), done - start, latencies)
            except Exception:
                # Telemetry must never kill a worker; results are
                # already delivered at this point.
                pass
