"""LUTBoost multistage training (Fig. 6 / Sec. V-1).

Stages:

1. **Operator replace** — :func:`repro.lutboost.converter.convert_model`.
2. **Centroid calibration** — freeze model weights, train only centroids
   with task loss + penalty * reconstruction loss.
3. **Joint training** — unfreeze everything, train centroids and weights
   together at a lower learning rate.

``SingleStageTrainer`` reproduces the prior-work baseline (random centroid
init, everything trained at once) that Fig. 7 and Table II compare against.
"""

from __future__ import annotations


from ..nn import functional as F
from ..nn.data import DataLoader, evaluate_accuracy
from ..nn.optim import Adam, SGD
from ..nn.tensor import Tensor
from .converter import (
    ConversionPolicy,
    calibrate_model,
    convert_model,
    lut_operators,
    refresh_batchnorm,
)
from .reconstruction import model_reconstruction_loss

__all__ = [
    "TrainingLog",
    "MultistageTrainer",
    "SingleStageTrainer",
    "train_epochs",
]


class TrainingLog:
    """Loss / accuracy trace across stages (drives Fig. 7)."""

    def __init__(self):
        self.losses = []
        self.stage_boundaries = []
        self.accuracies = {}

    def log_loss(self, value):
        self.losses.append(float(value))

    def mark_stage(self, name):
        self.stage_boundaries.append((len(self.losses), name))

    def log_accuracy(self, stage, value):
        self.accuracies[stage] = float(value)


def _centroid_params(model):
    return [op.centroids for _, op in lut_operators(model)]


def _non_centroid_params(model):
    centroid_ids = {id(p) for p in _centroid_params(model)}
    return [p for p in model.parameters() if id(p) not in centroid_ids]


def train_epochs(model, dataset, epochs, optimizer, batch_size=32,
                 recon_penalty=0.0, forward=None, loss_fn=None, log=None,
                 seed=0, output_space_recon=False):
    """Generic training loop shared by all stages.

    ``loss_fn(logits, labels)`` defaults to cross-entropy; the configured
    ``recon_penalty`` adds the LUTBoost reconstruction regulariser.
    """
    forward = forward or (lambda m, x: m(Tensor(x)))
    loss_fn = loss_fn or F.cross_entropy
    loader = DataLoader(dataset, batch_size, shuffle=True, seed=seed)
    model.train()
    for _ in range(epochs):
        for inputs, labels in loader:
            logits = forward(model, inputs)
            loss = loss_fn(logits, labels)
            if recon_penalty:
                loss = loss + recon_penalty * model_reconstruction_loss(
                    model, output_space=output_space_recon
                )
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            if log is not None:
                log.log_loss(loss.item())
    return model


class MultistageTrainer:
    """The LUTBoost pipeline: replace -> calibrate -> centroid stage -> joint.

    Parameters mirror the paper's Sec. VII-A settings, scaled to the small
    synthetic workloads: centroid-stage lr 1e-3, joint lr 5e-4, penalty
    ratio 0.05 for the reconstruction loss.
    """

    def __init__(self, v, c, metric="l2", centroid_epochs=3, joint_epochs=6,
                 centroid_lr=1e-3, joint_lr=5e-4, recon_penalty=0.05,
                 batch_size=32, skip_names=(), forward=None, loss_fn=None,
                 seed=0, optimizer="adam"):
        self.policy = ConversionPolicy(v, c, metric, skip_names=skip_names)
        self.centroid_epochs = centroid_epochs
        self.joint_epochs = joint_epochs
        self.centroid_lr = centroid_lr
        self.joint_lr = joint_lr
        self.recon_penalty = recon_penalty
        self.batch_size = batch_size
        self.forward = forward
        self.loss_fn = loss_fn
        self.seed = seed
        self.optimizer = optimizer

    def _make_optimizer(self, params, lr):
        if self.optimizer == "adam":
            return Adam(params, lr=lr)
        return SGD(params, lr=lr, momentum=0.9)

    def convert(self, model, sample_inputs):
        """Stages 1-2 setup: operator replace + progressive k-means
        calibration + BatchNorm statistics refresh."""
        convert_model(model, self.policy)
        calibrate_model(model, sample_inputs, forward=self.forward,
                        seed=self.seed)
        refresh_batchnorm(model, sample_inputs, forward=self.forward)
        return model

    def fit(self, model, train_dataset, eval_dataset=None, log=None):
        """Run the centroid-calibration and joint-training stages."""
        log = log if log is not None else TrainingLog()

        # Stage 2: centroids only.
        log.mark_stage("centroid")
        frozen = _non_centroid_params(model)
        for p in frozen:
            p.requires_grad = False
        centroid_opt = self._make_optimizer(_centroid_params(model),
                                            self.centroid_lr)
        train_epochs(model, train_dataset, self.centroid_epochs, centroid_opt,
                     batch_size=self.batch_size,
                     recon_penalty=self.recon_penalty, forward=self.forward,
                     loss_fn=self.loss_fn, log=log, seed=self.seed)
        for p in frozen:
            p.requires_grad = True
        if eval_dataset is not None:
            log.log_accuracy(
                "after_centroid",
                evaluate_accuracy(model, eval_dataset, forward=self.forward),
            )

        # Stage 3: joint training at lower lr.
        log.mark_stage("joint")
        joint_opt = self._make_optimizer(model.parameters(), self.joint_lr)
        train_epochs(model, train_dataset, self.joint_epochs, joint_opt,
                     batch_size=self.batch_size,
                     recon_penalty=self.recon_penalty, forward=self.forward,
                     loss_fn=self.loss_fn, log=log, seed=self.seed + 1)
        if eval_dataset is not None:
            log.log_accuracy(
                "after_joint",
                evaluate_accuracy(model, eval_dataset, forward=self.forward),
            )
        return log

    def run(self, model, train_dataset, eval_dataset=None, sample_inputs=None):
        """Full pipeline. ``sample_inputs`` defaults to the first batch."""
        if sample_inputs is None:
            sample_inputs = train_dataset.inputs[: self.batch_size]
        self.convert(model, sample_inputs)
        return self.fit(model, train_dataset, eval_dataset)


class SingleStageTrainer:
    """Prior-work baseline: random centroids, weights + centroids together.

    Matches the "Previous Work" curve of Fig. 7 and the "Single Stage"
    columns of Table II: no calibration stage, no staged freezing.
    """

    def __init__(self, v, c, metric="l2", epochs=9, lr=5e-4, batch_size=32,
                 skip_names=(), forward=None, loss_fn=None, seed=0,
                 recon_penalty=0.0):
        self.policy = ConversionPolicy(v, c, metric, skip_names=skip_names)
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.forward = forward
        self.loss_fn = loss_fn
        self.seed = seed
        self.recon_penalty = recon_penalty

    def run(self, model, train_dataset, eval_dataset=None):
        convert_model(model, self.policy)
        for i, (_, op) in enumerate(lut_operators(model)):
            op.randomize_centroids(seed=self.seed + i)
        log = TrainingLog()
        log.mark_stage("single")
        optimizer = Adam(model.parameters(), lr=self.lr)
        train_epochs(model, train_dataset, self.epochs, optimizer,
                     batch_size=self.batch_size,
                     recon_penalty=self.recon_penalty,
                     forward=self.forward, loss_fn=self.loss_fn, log=log,
                     seed=self.seed)
        if eval_dataset is not None:
            log.log_accuracy(
                "final",
                evaluate_accuracy(model, eval_dataset, forward=self.forward),
            )
        return log
