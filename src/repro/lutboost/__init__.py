"""LUTBoost: efficient multistage LUT-based model converter (paper Sec. V)."""

from .converter import (
    ConversionPolicy,
    calibrate_model,
    convert_model,
    lut_operators,
)
from .lut_layers import GemmWorkload, LUTConv2d, LUTLinear
from .reconstruction import model_reconstruction_loss, reconstruction_loss
from .trainer import (
    MultistageTrainer,
    SingleStageTrainer,
    TrainingLog,
    train_epochs,
)

__all__ = [
    "ConversionPolicy",
    "convert_model",
    "calibrate_model",
    "lut_operators",
    "LUTLinear",
    "LUTConv2d",
    "GemmWorkload",
    "reconstruction_loss",
    "model_reconstruction_loss",
    "MultistageTrainer",
    "SingleStageTrainer",
    "TrainingLog",
    "train_epochs",
]
