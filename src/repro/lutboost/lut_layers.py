"""LUT-based differentiable operators (the paper's "LUT-OP").

``LUTLinear`` / ``LUTConv2d`` replace ``nn.Linear`` / ``nn.Conv2d`` during
LUTBoost step (1) (operator replace, Fig. 6). During training the forward
pass quantizes activations to their nearest centroid per subspace and the
backward pass uses a straight-through estimator:

    output  = A_hat @ W   (forward)
    dL/dA  ~= dL/dA_hat   (backward, Sec. V-2)

Centroids receive gradients both through the quantized path (the selected
centroid rows participate in the GEMM) and through the reconstruction loss.
At deployment :meth:`export_lut` freezes the operator into a
(:class:`~repro.vq.Codebook`, :class:`~repro.vq.PSumLUT`) pair, and
:meth:`lut_inference` executes the pure lookup-accumulate path the IMM
implements in hardware.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.init import kaiming_uniform
from ..nn.layers import Module, Parameter
from ..nn.tensor import Tensor
from ..vq.codebook import Codebook
from ..vq.distances import batched_nearest_centroid
from ..vq.lut import PSumLUT
from ..vq.quant import fake_quant_int8, to_bf16

__all__ = ["LUTLinear", "LUTConv2d", "GemmWorkload"]


class GemmWorkload:
    """The (M, K, N) GEMM one LUT operator performs per input batch.

    This is the unit handed to :mod:`repro.sim` and :mod:`repro.dse`:
    M rows of activations (after im2col for convolutions), K reduction
    length, N output features, quantized with (v, c).
    """

    def __init__(self, m, k, n, v, c, metric="l2", name=""):
        self.m = int(m)
        self.k = int(k)
        self.n = int(n)
        self.v = int(v)
        self.c = int(c)
        self.metric = metric
        self.name = name

    @property
    def num_subspaces(self):
        return int(np.ceil(self.k / self.v))

    @property
    def macs(self):
        """Multiply-accumulates of the exact GEMM this operator replaces."""
        return self.m * self.k * self.n

    def __repr__(self):
        return "GemmWorkload(%s: M=%d K=%d N=%d v=%d c=%d)" % (
            self.name or "gemm", self.m, self.k, self.n, self.v, self.c,
        )


class _LUTOperatorMixin:
    """Shared quantization machinery for LUT layers."""

    def _init_vq_state(self, k, v, c, metric):
        if metric not in ("l2", "l1", "chebyshev"):
            raise ValueError("unsupported metric %r" % (metric,))
        self.v = int(v)
        self.c = int(c)
        self.metric = metric
        self.k = int(k)
        self.num_subspaces = int(np.ceil(k / v))
        # Centroids become a trainable Parameter once calibrated.
        self.centroids = Parameter(np.zeros((self.num_subspaces, self.c, self.v)))
        self.calibrated = False
        self.collect_activations = False
        self._collected = []
        # Populated each forward pass; consumed by the trainer's
        # reconstruction loss.
        self.last_input = None
        self.last_quantized = None

    # ------------------------------------------------------------------
    def calibrate(self, activations=None, seed=0):
        """Initialise centroids with per-subspace k-means (step 1 -> 2).

        ``activations`` defaults to whatever was recorded while
        ``collect_activations`` was set.
        """
        if activations is None:
            if not self._collected:
                raise RuntimeError(
                    "no activations recorded; run a forward pass with "
                    "collect_activations=True or pass activations explicitly"
                )
            activations = np.concatenate(self._collected, axis=0)
        activations = np.asarray(activations, dtype=np.float64).reshape(-1, self.k)
        book = Codebook.fit(activations, v=self.v, c=self.c, metric=self.metric,
                            seed=seed)
        self.centroids.data = book.centroids
        self.calibrated = True
        self._collected = []
        return self

    def randomize_centroids(self, seed=0, scale=1.0):
        """Random centroid init (the single-stage baseline of Fig. 7)."""
        rng = np.random.default_rng(seed)
        self.centroids.data = rng.normal(
            0.0, scale, (self.num_subspaces, self.c, self.v)
        )
        self.calibrated = True
        return self

    # ------------------------------------------------------------------
    def _quantize_flat(self, flat):
        """Quantize a flat (n, K) Tensor with the STE described above.

        Returns a Tensor whose forward value is the hard-VQ reconstruction
        and whose backward pass routes gradients to both the input (STE)
        and the selected centroid rows.
        """
        padded_k = self.num_subspaces * self.v
        data = flat.data
        if padded_k != self.k:
            padded = np.pad(data, ((0, 0), (0, padded_k - self.k)))
        else:
            padded = data
        per_sub = padded.reshape(-1, self.num_subspaces, self.v)

        indices = batched_nearest_centroid(
            per_sub.transpose(1, 0, 2), self.centroids.data, self.metric
        )
        self.last_indices = indices

        centroids = self.centroids
        k = self.k

        def backward(grad):
            # grad has shape (n, K): route to centroids (scatter-add into the
            # selected rows) and straight-through to the input.
            if padded_k != k:
                gpad = np.pad(grad, ((0, 0), (0, padded_k - k)))
            else:
                gpad = grad
            g_sub = gpad.reshape(-1, centroids.data.shape[0], centroids.data.shape[2])
            g_cent = np.zeros_like(centroids.data)
            for s in range(g_cent.shape[0]):
                np.add.at(g_cent[s], indices[:, s], g_sub[:, s, :])
            return ((centroids, g_cent), (flat, grad))

        sub_ids = np.arange(self.num_subspaces)
        quant = self.centroids.data[sub_ids[None, :], indices]
        quant_flat = quant.reshape(-1, padded_k)[:, : self.k]
        return Tensor._make(quant_flat, (centroids, flat), backward)

    def _forward_gemm(self, flat, weight, bias):
        """Common forward: collect / quantize / record / GEMM."""
        if self.collect_activations:
            self._collected.append(flat.data.copy())
        if not self.calibrated:
            out = flat @ weight
            return out + bias if bias is not None else out
        quantized = self._quantize_flat(flat)
        self.last_input = flat
        self.last_quantized = quantized
        out = quantized @ weight
        return out + bias if bias is not None else out

    # ------------------------------------------------------------------
    def export_lut(self, precision="fp32"):
        """Freeze into a (Codebook, PSumLUT) pair for deployment.

        ``precision`` is 'fp32' or 'bf16+int8' (Table IV's deployment
        columns): the latter rounds centroids through bfloat16 and stores
        LUT entries as INT8 with per-subspace scales.
        """
        if not self.calibrated:
            raise RuntimeError("cannot export an uncalibrated LUT operator")
        centroids = self.centroids.data
        weight = self._weight_matrix()
        if precision == "bf16+int8":
            centroids = to_bf16(centroids)
            book = Codebook(centroids, k=self.k, metric=self.metric)
            lut = PSumLUT.precompute(book, weight)
            lut.table = fake_quant_int8(lut.table, axis=(1, 2))
        elif precision == "fp32":
            book = Codebook(centroids, k=self.k, metric=self.metric)
            lut = PSumLUT.precompute(book, weight)
        else:
            raise ValueError("unknown precision %r" % (precision,))
        return book, lut

    def _weight_matrix(self):
        raise NotImplementedError

    def export_kernel(self, precision="fp32"):
        """Serving-plan export hook (:mod:`repro.serving.compiler`).

        Freezes the operator into a raw kernel spec: per-subspace centroid
        and PSum-LUT arrays plus whatever geometry the serving compiler
        needs to replay the operator without touching this module again.
        """
        book, lut = self.export_lut(precision)
        spec = {
            "centroids": np.ascontiguousarray(book.centroids),
            "table": np.ascontiguousarray(lut.table),
            "bias": None if self.bias is None else self.bias.data.copy(),
            "k": self.k,
            "v": self.v,
            "c": self.c,
            "metric": self.metric,
            "n_out": lut.n_out,
        }
        spec.update(self._kernel_geometry())
        return spec

    def _kernel_geometry(self):
        raise NotImplementedError


class LUTLinear(Module, _LUTOperatorMixin):
    """Drop-in LUT replacement for :class:`repro.nn.Linear`."""

    def __init__(self, in_features, out_features, v, c, metric="l2", bias=True,
                 rng=None):
        Module.__init__(self)
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(kaiming_uniform(rng, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._init_vq_state(in_features, v, c, metric)

    @classmethod
    def from_linear(cls, linear, v, c, metric="l2"):
        """Wrap an existing trained Linear (LUTBoost step 1)."""
        out = cls(linear.in_features, linear.out_features, v, c, metric,
                  bias=linear.bias is not None)
        out.weight.data = linear.weight.data.copy()
        if linear.bias is not None:
            out.bias.data = linear.bias.data.copy()
        return out

    def forward(self, x):
        lead_shape = x.shape[:-1]
        flat = x.reshape(-1, self.in_features)
        out = self._forward_gemm(flat, self.weight, self.bias)
        return out.reshape(*lead_shape, self.out_features)

    def _weight_matrix(self):
        return self.weight.data

    def lut_inference(self, x, precision="fp32"):
        """Pure numpy lookup path (no autograd): what the IMM computes."""
        book, lut = self.export_lut(precision)
        x = np.asarray(x, dtype=np.float64)
        lead_shape = x.shape[:-1]
        flat = x.reshape(-1, self.in_features)
        out = lut.lookup_accumulate(book.encode(flat))
        if self.bias is not None:
            out = out + self.bias.data
        return out.reshape(*lead_shape, self.out_features)

    def workload(self, batch_rows, name=""):
        """GEMM workload for ``batch_rows`` activation rows."""
        return GemmWorkload(batch_rows, self.in_features, self.out_features,
                            self.v, self.c, self.metric, name=name)

    def _kernel_geometry(self):
        return {"kind": "linear"}

    def __repr__(self):
        return "LUTLinear(%d -> %d, v=%d, c=%d, metric=%r%s)" % (
            self.in_features, self.out_features, self.v, self.c, self.metric,
            "" if self.calibrated else ", uncalibrated")


class LUTConv2d(Module, _LUTOperatorMixin):
    """Drop-in LUT replacement for :class:`repro.nn.Conv2d`.

    Convolution is lowered to im2col + GEMM; the VQ subspaces live along
    the patch dimension (C_in * kH * kW), matching the paper's treatment
    of convolutions as GEMMs.
    """

    def __init__(self, in_channels, out_channels, kernel_size, v, c,
                 stride=1, padding=0, metric="l2", bias=True, rng=None):
        Module.__init__(self)
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.weight = Parameter(
            rng.normal(0.0, scale,
                       (out_channels, in_channels, kernel_size, kernel_size))
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self._init_vq_state(fan_in, v, c, metric)

    @classmethod
    def from_conv(cls, conv, v, c, metric="l2"):
        out = cls(conv.in_channels, conv.out_channels, conv.kernel_size, v, c,
                  stride=conv.stride, padding=conv.padding, metric=metric,
                  bias=conv.bias is not None)
        out.weight.data = conv.weight.data.copy()
        if conv.bias is not None:
            out.bias.data = conv.bias.data.copy()
        return out

    def forward(self, x):
        n = x.shape[0]
        patches, out_h, out_w = F.im2col(x, self.kernel_size, self.stride,
                                         self.padding)
        w_mat = self.weight.reshape(
            self.out_channels, self.k
        ).T
        out = self._forward_gemm(patches, w_mat, self.bias)
        return out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def _weight_matrix(self):
        return self.weight.data.reshape(self.out_channels, self.k).T

    def lut_inference(self, x, precision="fp32"):
        book, lut = self.export_lut(precision)
        x = np.asarray(x, dtype=np.float64)
        patches, out_h, out_w = F.im2col_array(x, self.kernel_size, self.stride,
                                               self.padding)
        out = lut.lookup_accumulate(book.encode(patches))
        if self.bias is not None:
            out = out + self.bias.data
        n = x.shape[0]
        return out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def output_size(self, h, w):
        return (F.conv_output_size(h, self.kernel_size, self.stride, self.padding),
                F.conv_output_size(w, self.kernel_size, self.stride, self.padding))

    def workload(self, batch, h, w, name=""):
        """GEMM workload for a (batch, C, h, w) input after im2col."""
        out_h, out_w = self.output_size(h, w)
        return GemmWorkload(batch * out_h * out_w, self.k, self.out_channels,
                            self.v, self.c, self.metric, name=name)

    def _kernel_geometry(self):
        return {
            "kind": "conv2d",
            "kernel_size": self.kernel_size,
            "stride": self.stride,
            "padding": self.padding,
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
        }

    def __repr__(self):
        return "LUTConv2d(%d -> %d, k=%d, v=%d, c=%d, metric=%r%s)" % (
            self.in_channels, self.out_channels, self.kernel_size, self.v,
            self.c, self.metric, "" if self.calibrated else ", uncalibrated")
