"""Operator replacement: turn a trained model into a LUT-based model.

This is LUTBoost step (1) of Fig. 6: every ``Linear`` / ``Conv2d`` selected
by the policy is swapped in place for its LUT counterpart, preserving the
trained weights. Centroids are then calibrated from a sample batch
(:func:`calibrate_model`) before the multistage trainer takes over.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Conv2d, Linear, Module
from ..nn.tensor import Tensor, no_grad
from .lut_layers import LUTConv2d, LUTLinear

__all__ = [
    "ConversionPolicy",
    "convert_model",
    "calibrate_model",
    "lut_operators",
    "refresh_batchnorm",
]


class ConversionPolicy:
    """Which operators to convert and with what (v, c, metric).

    ``skip_names`` lets callers keep e.g. the input stem or classifier head
    in full precision — the common practice the paper follows for the first
    convolution of ResNets.
    """

    def __init__(self, v, c, metric="l2", convert_linear=True,
                 convert_conv=True, skip_names=(), min_in_features=2):
        self.v = v
        self.c = c
        self.metric = metric
        self.convert_linear = convert_linear
        self.convert_conv = convert_conv
        self.skip_names = tuple(skip_names)
        self.min_in_features = min_in_features

    def wants(self, name, module):
        if any(name == s or name.endswith(s) for s in self.skip_names):
            return False
        if isinstance(module, Linear):
            return self.convert_linear and module.in_features >= self.min_in_features
        if isinstance(module, Conv2d):
            fan_in = module.in_channels * module.kernel_size**2
            return self.convert_conv and fan_in >= self.min_in_features
        return False


def _replace_child(parent, attr, new_module):
    value = getattr(parent, attr, None)
    if value is not None and not isinstance(value, (list, tuple)):
        setattr(parent, attr, new_module)
        return
    raise AttributeError("cannot replace %r on %r" % (attr, parent))


def convert_model(model, policy):
    """Replace selected Linear/Conv2d modules with LUT operators in place.

    Returns the list of (name, lut_module) replacements performed.
    """
    replaced = []
    for parent_name, parent in model.named_modules():
        for attr, child in list(vars(parent).items()):
            full = "%s.%s" % (parent_name, attr) if parent_name else attr
            if isinstance(child, (list, tuple)):
                new_children = list(child)
                for i, item in enumerate(new_children):
                    item_name = "%s.%d" % (full, i)
                    lut = _maybe_convert(item, item_name, policy)
                    if lut is not None:
                        new_children[i] = lut
                        replaced.append((item_name, lut))
                setattr(parent, attr, new_children)
            elif isinstance(child, Module):
                lut = _maybe_convert(child, full, policy)
                if lut is not None:
                    setattr(parent, attr, lut)
                    replaced.append((full, lut))
    return replaced


def _maybe_convert(module, name, policy):
    if isinstance(module, (LUTLinear, LUTConv2d)):
        return None
    if not policy.wants(name, module):
        return None
    if isinstance(module, Linear):
        return LUTLinear.from_linear(module, policy.v, policy.c, policy.metric)
    if isinstance(module, Conv2d):
        return LUTConv2d.from_conv(module, policy.v, policy.c, policy.metric)
    return None


def lut_operators(model):
    """All LUT operators in ``model`` as (name, module) pairs."""
    return [
        (name, m)
        for name, m in model.named_modules()
        if isinstance(m, (LUTLinear, LUTConv2d))
    ]


def calibrate_model(model, sample_inputs, forward=None, seed=0,
                    progressive=True):
    """Initialise every LUT operator's centroids from real activations.

    With ``progressive=True`` (default) operators are calibrated in
    execution order, one forward pass each, so that every layer's k-means
    sees the *already-quantized* upstream distribution — without this,
    per-layer errors compound through deep networks (the effect is mild
    for 2-3 layer models but decisive for ResNets). ``progressive=False``
    calibrates all operators from a single full-precision pass.
    """
    operators = lut_operators(model)
    forward = forward or (lambda m, x: m(Tensor(x)))
    was_training = model.training
    model.eval()
    inputs = np.asarray(sample_inputs)

    if progressive:
        for i, (_, op) in enumerate(operators):
            op.collect_activations = True
            with no_grad():
                forward(model, inputs)
            op.collect_activations = False
            op.calibrate(seed=seed + i)
    else:
        for _, op in operators:
            op.collect_activations = True
        with no_grad():
            forward(model, inputs)
        for i, (_, op) in enumerate(operators):
            op.collect_activations = False
            op.calibrate(seed=seed + i)
    model.train(was_training)
    return operators


def refresh_batchnorm(model, sample_inputs, forward=None, passes=3):
    """Re-estimate BatchNorm running statistics after conversion.

    Quantized activations shift layer input distributions; stale running
    stats otherwise dominate the post-conversion accuracy drop.
    """
    from ..nn.layers import BatchNorm2d

    bns = [m for m in model.modules() if isinstance(m, BatchNorm2d)]
    if not bns:
        return
    forward = forward or (lambda m, x: m(Tensor(x)))
    was_training = model.training
    model.train()
    for bn in bns:
        bn.momentum, bn._saved_momentum = 0.5, bn.momentum
    with no_grad():
        for _ in range(passes):
            forward(model, np.asarray(sample_inputs))
    for bn in bns:
        bn.momentum = bn._saved_momentum
        del bn._saved_momentum
    model.train(was_training)
