"""Reconstruction (regularisation) loss of LUTBoost (Sec. V-2).

The paper defines, with SG the stop-gradient operator:

    Lre = (SG(A_hat . W) - A . W)^2 + (A_hat . W - SG(A . W))^2

The first term pushes the *activations* (and upstream weights) toward the
frozen quantized output; the second trains the *centroids* toward the frozen
exact output. We implement both the paper's output-space form and a cheaper
feature-space form that drops W (equivalent up to a W-weighted metric) —
the trainer uses the feature-space form by default for speed.
"""

from __future__ import annotations

from ..nn.tensor import Tensor

__all__ = ["reconstruction_loss", "model_reconstruction_loss"]


def reconstruction_loss(layer, output_space=False):
    """Lre for one LUT operator after a forward pass.

    Parameters
    ----------
    layer:
        A LUT operator exposing ``last_input`` / ``last_quantized``.
    output_space:
        When True, apply the layer's weight matrix first (the paper's exact
        formulation); when False, compare A_hat with A directly.
    """
    a = layer.last_input
    a_hat = layer.last_quantized
    if a is None or a_hat is None:
        return Tensor(0.0)
    if output_space:
        w = Tensor(layer._weight_matrix())
        a = a @ w
        a_hat = a_hat @ w
    term_centroid = ((a_hat - a.detach()) ** 2).mean()
    term_commit = ((a_hat.detach() - a) ** 2).mean()
    return term_centroid + term_commit


def model_reconstruction_loss(model, output_space=False):
    """Sum of per-operator reconstruction losses over a whole model."""
    from .lut_layers import LUTConv2d, LUTLinear

    total = Tensor(0.0)
    count = 0
    for module in model.modules():
        if isinstance(module, (LUTLinear, LUTConv2d)) and module.calibrated:
            total = total + reconstruction_loss(module, output_space)
            count += 1
    if count:
        total = total * (1.0 / count)
    return total
