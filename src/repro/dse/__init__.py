"""Co-design space exploration: analytical models, oracles, Algorithm 2."""

from .analytical import (
    ALPHA_SIM,
    compute_cost,
    gemm_cost,
    memory_cost,
    omega_breakdown,
    omega_cycles,
)
from .constraints import Constraints
from .oracle import QuantizationErrorOracle, QuickTrainOracle, TabulatedOracle
from .search import CoDesignSearchEngine, SearchPoint, SearchResult

__all__ = [
    "ALPHA_SIM",
    "compute_cost",
    "gemm_cost",
    "memory_cost",
    "omega_breakdown",
    "omega_cycles",
    "Constraints",
    "TabulatedOracle",
    "QuantizationErrorOracle",
    "QuickTrainOracle",
    "CoDesignSearchEngine",
    "SearchPoint",
    "SearchResult",
]
