"""Analytical models of Sec. VI-B: computation (Eq. 1), memory (Eq. 2) and
parallelism/cycle (Eq. 5) cost functions.

Notation follows Table III: the GEMM is (M x K) x (K x N), ``v`` is the
sub-vector length, ``c`` the centroids per codebook, ``beta`` the external
bandwidth in bits/cycle, ``n_ccu`` / ``n_imm`` the module counts.

Two deliberate deviations from the printed equations, both documented in
EXPERIMENTS.md:

- Eq. (1)'s similarity term is printed as ``a*c*M*v*ceil(c/v)``; the
  dimensionally consistent form (and the one matching the surrounding
  prose) is ``a*c*M*v*ceil(K/v)`` = a*M*K*c element operations. We use K.
- Eq. (5)'s lookup term ``M*N*K/(v*n_imm)`` does not account for the Tn
  entries retired per lookup; we expose ``tn`` (default 1 reproduces the
  printed form).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ALPHA_SIM",
    "compute_cost",
    "gemm_cost",
    "memory_cost",
    "omega_cycles",
    "omega_breakdown",
]

# Element-operation count per similarity comparison step (Sec. VI-B1:
# "for L2 distance, alpha_sim = 2 accounts for 1 multiplier and 1 adder").
ALPHA_SIM = {"l2": 2.0, "l1": 2.0, "chebyshev": 2.0}


def compute_cost(m, k, n, v, c, metric="l2"):
    """Eq. (1): tau(v, c) = OP_sim + OP_add (element operations)."""
    alpha = ALPHA_SIM[metric]
    nc = np.ceil(k / v)
    op_sim = alpha * c * m * v * nc
    op_add = m * n * nc
    return op_sim + op_add


def gemm_cost(m, k, n):
    """Element operations of the exact GEMM (MACs counted as 2 ops)."""
    return 2.0 * m * k * n


def memory_cost(m, k, n, v, c, lut_bits=8, out_bits=8):
    """Eq. (2): phi(v, c) = mem_LUT + mem_out + mem_indices (bits)."""
    nc = np.ceil(k / v)
    index_bits = max(1, int(np.ceil(np.log2(c))))
    mem_lut = n * c * nc * lut_bits
    mem_out = m * n * out_bits
    mem_idx = nc * m * index_bits
    return mem_lut + mem_out + mem_idx


def omega_breakdown(m, k, n, v, c, beta, n_imm, n_ccu, lut_bits=8, tn=1):
    """The three pipeline-stage cycle counts of Eq. (5).

    Returns dict with 'load', 'similarity', 'lookup' cycle estimates.
    """
    nc = np.ceil(k / v)
    load = nc * c * n * lut_bits / beta
    similarity = m * k / (v * n_ccu)
    lookup = m * n * nc / (tn * n_imm)
    return {"load": load, "similarity": similarity, "lookup": lookup}


def omega_cycles(m, k, n, v, c, beta, n_imm, n_ccu, lut_bits=8, tn=1):
    """Eq. (5): omega = max(load, sim, lookup) — the pipeline bottleneck."""
    parts = omega_breakdown(m, k, n, v, c, beta, n_imm, n_ccu, lut_bits, tn)
    return max(parts.values())
