"""Accuracy oracles for the DSE accuracy-pruning step (Algorithm 2, Step 3).

The paper exploits LUTBoost's fast early-stage accuracy estimate. Three
oracles, in increasing cost:

- :class:`TabulatedOracle` — fixed (v, c) -> accuracy table (tests, replays
  of recorded sweeps).
- :class:`QuantizationErrorOracle` — training-free proxy: accuracy estimated
  from the hard-VQ reconstruction error of sample activations (monotone in
  the true accuracy trend: larger c / smaller v => lower error).
- :class:`QuickTrainOracle` — runs the LUTBoost centroid-calibration stage
  for a handful of epochs and measures real accuracy (the paper's
  "coarse-grained accuracy search").
"""

from __future__ import annotations

import numpy as np

from ..vq.codebook import Codebook

__all__ = ["TabulatedOracle", "QuantizationErrorOracle", "QuickTrainOracle"]


class TabulatedOracle:
    """Lookup oracle over a {(v, c): accuracy} dict."""

    def __init__(self, table, default=0.0):
        self.table = dict(table)
        self.default = default

    def __call__(self, v, c, metric="l2"):
        return self.table.get((v, c), self.default)


class QuantizationErrorOracle:
    """Accuracy proxy from VQ reconstruction error on sample activations.

    Maps the relative reconstruction error e (0 = lossless) to a proxy
    accuracy ``base_accuracy * exp(-sensitivity * e)``. The absolute value
    is meaningless; its *ordering* over (v, c) mirrors Fig. 8's trends,
    which is all the pruning step needs.
    """

    def __init__(self, activations, base_accuracy=1.0, sensitivity=4.0,
                 seed=0):
        self.activations = np.asarray(activations, dtype=np.float64)
        if self.activations.ndim != 2:
            self.activations = self.activations.reshape(
                self.activations.shape[0], -1)
        self.base_accuracy = base_accuracy
        self.sensitivity = sensitivity
        self.seed = seed
        self._cache = {}

    def __call__(self, v, c, metric="l2"):
        key = (v, c, metric)
        if key not in self._cache:
            book = Codebook.fit(self.activations, v=v, c=c, metric=metric,
                                seed=self.seed, max_iter=10)
            err = book.quantization_error(self.activations)
            scale = float(np.mean(self.activations**2)) + 1e-12
            rel = err / scale
            self._cache[key] = self.base_accuracy * float(np.exp(
                -self.sensitivity * rel))
        return self._cache[key]


class QuickTrainOracle:
    """Real (coarse) accuracy from a short LUTBoost centroid stage."""

    def __init__(self, model_factory, train_dataset, eval_dataset,
                 epochs=1, lr=1e-3, batch_size=32, forward=None, seed=0):
        self.model_factory = model_factory
        self.train_dataset = train_dataset
        self.eval_dataset = eval_dataset
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.forward = forward
        self.seed = seed
        self._cache = {}

    def __call__(self, v, c, metric="l2"):
        key = (v, c, metric)
        if key not in self._cache:
            from ..lutboost.trainer import MultistageTrainer
            from ..nn.data import evaluate_accuracy

            model = self.model_factory()
            trainer = MultistageTrainer(
                v=v, c=c, metric=metric, centroid_epochs=self.epochs,
                joint_epochs=0, centroid_lr=self.lr,
                batch_size=self.batch_size, forward=self.forward,
                seed=self.seed)
            sample = self.train_dataset.inputs[: self.batch_size]
            trainer.convert(model, sample)
            trainer.fit(model, self.train_dataset)
            self._cache[key] = evaluate_accuracy(
                model, self.eval_dataset, forward=self.forward)
        return self._cache[key]
