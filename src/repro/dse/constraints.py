"""Constraint set for the co-design search (Sec. VI-C objective)."""

from __future__ import annotations

__all__ = ["Constraints"]


class Constraints:
    """Upper/lower bounds the searched design must satisfy.

    Parameters
    ----------
    max_area_mm2 / max_power_mw:
        Hardware budget (Eq. 3 / Eq. 4 bounds).
    min_accuracy:
        Accuracy floor checked against the accuracy oracle.
    max_compute_ratio:
        tau(v, c) must not exceed this fraction of the exact GEMM cost
        (Step 1 "complexity pruning": reject points worse than GEMM).
    max_memory_bits:
        phi(v, c) ceiling (Step 1 "memory pruning").
    """

    def __init__(self, max_area_mm2, max_power_mw, min_accuracy=0.0,
                 max_compute_ratio=1.0, max_memory_bits=float("inf")):
        if max_area_mm2 <= 0 or max_power_mw <= 0:
            raise ValueError("area and power budgets must be positive")
        self.max_area_mm2 = float(max_area_mm2)
        self.max_power_mw = float(max_power_mw)
        self.min_accuracy = float(min_accuracy)
        self.max_compute_ratio = float(max_compute_ratio)
        self.max_memory_bits = float(max_memory_bits)

    def __repr__(self):
        return ("Constraints(area<=%.2fmm2, power<=%.0fmW, acc>=%.3f)"
                % (self.max_area_mm2, self.max_power_mw, self.min_accuracy))
