"""Co-Design Space Search Engine (Algorithm 2 / Fig. 11).

The search walks the (v, c) grid through four pruning stages and then
greedily expands parallelism:

1. **Complexity + memory pruning** — reject (v, c) whose analytic compute
   cost tau (Eq. 1) or memory footprint phi (Eq. 2) is worse than the GEMM
   requirements (Fig. 11 a, b).
2. **Hardware pruning** — reject points whose minimal one-CCU/one-IMM
   design already violates the area/power budget (Fig. 11 c).
3. **Accuracy pruning** — query the accuracy oracle (fast LUTBoost
   early-stage estimate) against the accuracy floor (Fig. 11 d).
4. **Parallelism expansion** — LUT-first greedy growth: while the budget
   holds, add an IMM when table lookup bounds Eq. (5), otherwise add a CCU
   (the paper's "idle CCUs serve additional IMMs" strategy, Fig. 10/11 e).

The winner minimises the Eq. (5) bottleneck cycle count; ties break toward
smaller area.
"""

from __future__ import annotations


from ..hw.accelerator import LUTDLADesign
from .analytical import compute_cost, gemm_cost, memory_cost, omega_breakdown, omega_cycles
from .constraints import Constraints

__all__ = ["SearchPoint", "SearchResult", "CoDesignSearchEngine"]


class SearchPoint:
    """One fully specified candidate: (v, c) + parallelism + its scores."""

    def __init__(self, v, c, n_ccu, n_imm, cycles, area_mm2, power_mw,
                 accuracy, breakdown):
        self.v = v
        self.c = c
        self.n_ccu = n_ccu
        self.n_imm = n_imm
        self.cycles = cycles
        self.area_mm2 = area_mm2
        self.power_mw = power_mw
        self.accuracy = accuracy
        self.breakdown = breakdown

    def __repr__(self):
        return ("SearchPoint(v=%d c=%d nCCU=%d nIMM=%d cycles=%.3g "
                "area=%.2f power=%.0f acc=%.3f)"
                % (self.v, self.c, self.n_ccu, self.n_imm, self.cycles,
                   self.area_mm2, self.power_mw, self.accuracy))


class SearchResult:
    """Winner + the audit trail of every pruning stage (Fig. 11 heatmaps)."""

    def __init__(self, best, survivors, pruned):
        self.best = best
        self.survivors = survivors
        self.pruned = pruned  # {(v, c): reason}

    def pruning_summary(self):
        counts = {}
        for reason in self.pruned.values():
            counts[reason] = counts.get(reason, 0) + 1
        counts["survived"] = len(self.survivors)
        return counts


class CoDesignSearchEngine:
    """Algorithm 2 over a (v, c) grid for one representative workload."""

    def __init__(self, v_space, c_space, workload, constraints,
                 accuracy_oracle, metric="l2", beta_bits_per_cycle=683,
                 tn=128, m_tile=256, lut_bits=8, max_parallelism=64,
                 design_factory=None):
        self.v_space = tuple(v_space)
        self.c_space = tuple(c_space)
        self.workload = workload  # GemmWorkload-like with .m/.k/.n
        if not isinstance(constraints, Constraints):
            raise TypeError("constraints must be a Constraints instance")
        self.constraints = constraints
        self.accuracy_oracle = accuracy_oracle
        self.metric = metric
        self.beta = beta_bits_per_cycle
        self.tn = tn
        self.m_tile = m_tile
        self.lut_bits = lut_bits
        self.max_parallelism = max_parallelism
        self.design_factory = design_factory or self._default_design

    # ------------------------------------------------------------------
    def _default_design(self, v, c, n_ccu, n_imm):
        return LUTDLADesign("candidate", v=v, c=c, tn=self.tn,
                            m_tile=self.m_tile, n_ccu=n_ccu, n_imm=n_imm,
                            metric=self.metric, lut_bits=self.lut_bits)

    def _fits_budget(self, design):
        return (design.area_mm2() <= self.constraints.max_area_mm2
                and design.power_mw() <= self.constraints.max_power_mw)

    def _omega(self, v, c, n_ccu, n_imm):
        w = self.workload
        return omega_cycles(w.m, w.k, w.n, v, c, self.beta, n_imm, n_ccu,
                            lut_bits=self.lut_bits, tn=self.tn)

    # ------------------------------------------------------------------
    def search(self, verbose=False):
        """Run all four stages; returns a :class:`SearchResult`."""
        w = self.workload
        pruned = {}
        survivors = []
        gemm_ops = gemm_cost(w.m, w.k, w.n)

        for v in self.v_space:
            for c in self.c_space:
                # Step 1a: complexity pruning (Eq. 1 vs GEMM requirement).
                tau = compute_cost(w.m, w.k, w.n, v, c, self.metric)
                if tau > self.constraints.max_compute_ratio * gemm_ops:
                    pruned[(v, c)] = "complexity"
                    continue
                # Step 1b: memory pruning (Eq. 2).
                phi = memory_cost(w.m, w.k, w.n, v, c, self.lut_bits)
                if phi > self.constraints.max_memory_bits:
                    pruned[(v, c)] = "memory"
                    continue
                # Step 2: hardware pruning with the minimal design.
                base = self.design_factory(v, c, 1, 1)
                if not self._fits_budget(base):
                    pruned[(v, c)] = "hardware"
                    continue
                # Step 3: accuracy pruning via the oracle.
                accuracy = self.accuracy_oracle(v, c, self.metric)
                if accuracy < self.constraints.min_accuracy:
                    pruned[(v, c)] = "accuracy"
                    continue
                # Step 4: LUT-first greedy parallelism expansion.
                point = self._expand_parallelism(v, c, accuracy)
                survivors.append(point)
                if verbose:
                    print("  kept", point)

        best = min(survivors, key=lambda p: (p.cycles, p.area_mm2),
                   default=None)
        return SearchResult(best, survivors, pruned)

    def _expand_parallelism(self, v, c, accuracy):
        n_ccu, n_imm = 1, 1
        while n_ccu + n_imm < self.max_parallelism:
            parts = omega_breakdown(self.workload.m, self.workload.k,
                                    self.workload.n, v, c, self.beta,
                                    n_imm, n_ccu, self.lut_bits, self.tn)
            # LUT-first: grow the module limiting the pipeline.
            if parts["lookup"] >= parts["similarity"]:
                candidate = (n_ccu, n_imm + 1)
            else:
                candidate = (n_ccu + 1, n_imm)
            design = self.design_factory(v, c, *candidate)
            if not self._fits_budget(design):
                break
            n_ccu, n_imm = candidate
        design = self.design_factory(v, c, n_ccu, n_imm)
        parts = omega_breakdown(self.workload.m, self.workload.k,
                                self.workload.n, v, c, self.beta, n_imm,
                                n_ccu, self.lut_bits, self.tn)
        return SearchPoint(v, c, n_ccu, n_imm,
                           self._omega(v, c, n_ccu, n_imm),
                           design.area_mm2(), design.power_mw(), accuracy,
                           parts)
