"""Per-request reference path for autoregressive generation.

``lut_generate`` is the generation analogue of chaining ``lut_inference``
per request: one prompt, no batching, no buckets, no KV cache — every
emitted token recomputes the full prefix through the LUT operators'
offline inference path plus the shared :mod:`repro.vq.kernels`. It is the
obviously-correct baseline the engine must reproduce: at fp64 the
:class:`~repro.gen.session.GeneratorServer` (padded bucketed prefill +
continuous-batched cached decode, locally or across the cluster's TCP
streaming path) must emit the *bit-identical* token sequence.

The kernels module is written so that sharing it really does pin the bits:
attention contractions are einsum (shape-independent per entry) and the
masked softmaxes normalise with a running sum (padding-independent), so
"same functions, different batching/padding" cannot drift.
"""

from __future__ import annotations

import numpy as np

from ..lutboost.lut_layers import LUTConv2d, LUTLinear
from ..nn.layers import Linear
from ..vq import kernels
from .sampling import SamplingConfig, sample_tokens

__all__ = ["reference_logits", "lut_generate"]


def _project(module, x, export_precision):
    """One Linear/LUTLinear projection on a raw (rows, features) array."""
    if isinstance(module, (LUTLinear, LUTConv2d)):
        return module.lut_inference(x, precision=export_precision)
    if isinstance(module, Linear):
        out = x @ module.weight.data
        if module.bias is not None:
            out = out + module.bias.data
        return out
    raise TypeError("cannot project through %s" % (type(module).__name__,))


def _norm(norm, x):
    return kernels.layer_norm(x, norm.weight.data, norm.bias.data, norm.eps)


def reference_logits(model, tokens, export_precision="fp32",
                     return_kv=False):
    """fp64 logits of one prompt through the per-request LUT path.

    Parameters
    ----------
    model:
        A converted :class:`~repro.models.TransformerDecoderLM`.
    tokens:
        1-D int token ids, length <= ``model.max_len``.
    export_precision:
        LUT export mode ('fp32' for the fp64/fp32 serving plans,
        'bf16+int8' for the quantized deployment plans).
    return_kv:
        Also return the per-layer split-head K/V lists
        (``[(heads, seq, head_dim), ...]``) — the values a prefill tap
        must reproduce.

    Returns
    -------
    (seq, vocab) float64 logits; position ``i`` scores token ``i + 1``.
    """
    tokens = np.asarray(tokens, dtype=np.int64).ravel()
    seq = len(tokens)
    if seq < 1:
        raise ValueError("prompt must hold at least one token")
    if seq > model.max_len:
        raise ValueError("prompt of %d tokens exceeds max_len %d"
                         % (seq, model.max_len))
    heads, head_dim, dim = model.num_heads, model.head_dim, model.dim
    scale = 1.0 / np.sqrt(head_dim)

    x = (kernels.embedding_gather(model.tok_embed.weight.data, tokens)
         + kernels.embedding_gather(model.pos_embed.weight.data,
                                    np.arange(seq)))
    kv = []
    for block in model.blocks:
        attn = block.attn
        h = _norm(block.norm1, x)

        def split(mat):
            return mat.reshape(seq, heads, head_dim).transpose(1, 0, 2)

        q = split(_project(attn.q_proj, h, export_precision))
        k = split(_project(attn.k_proj, h, export_precision))
        v = split(_project(attn.v_proj, h, export_precision))
        kv.append((k, v))
        # The stable (einsum) attention kernels: the decode engine computes
        # single-query rows against these same values, and only the
        # shape-stable contractions make those rows bitwise comparable.
        scores = kernels.attention_scores_stable(q, k, scale)
        weights = kernels.causal_softmax(scores)
        ctx = kernels.attention_context_stable(weights, v)
        ctx = ctx.transpose(1, 0, 2).reshape(seq, dim)
        x = x + _project(attn.out_proj, ctx, export_precision)
        h2 = _norm(block.norm2, x)
        hidden = kernels.gelu(_project(block.ffn_in, h2, export_precision))
        x = x + _project(block.ffn_out, hidden, export_precision)
    x = _norm(model.final_norm, x)
    logits = _project(model.head, x, export_precision)
    if return_kv:
        return logits, kv
    return logits


def lut_generate(model, prompt, max_new_tokens, eos_token=None,
                 export_precision="fp32", sampling=None):
    """Generation through the per-request reference path.

    Recomputes the full prefix for every emitted token (quadratic, cacheless
    — deliberately the simplest correct implementation). Returns the list
    of generated token ids; generation stops after ``max_new_tokens`` or on
    ``eos_token`` (which is included in the output, mirroring the engine).

    ``sampling`` is the :class:`~repro.gen.sampling.SamplingConfig` to
    decode under (``None`` = the greedy default). Token ``t`` of the
    stream is drawn at RNG counter ``(sampling.seed, t)``, the same
    convention the engine uses — so a seeded reference stream is the
    exact sequence every serving path must reproduce.
    """
    if max_new_tokens < 1:
        raise ValueError("max_new_tokens must be >= 1")
    sampling = SamplingConfig.from_dict(sampling)
    tokens = list(np.asarray(prompt, dtype=np.int64).ravel())
    if len(tokens) + max_new_tokens > model.max_len:
        raise ValueError(
            "prompt of %d + %d new tokens exceeds max_len %d"
            % (len(tokens), max_new_tokens, model.max_len))
    generated = []
    for step in range(max_new_tokens):
        logits = reference_logits(model, tokens, export_precision)
        nxt = int(sample_tokens(logits[-1][None], [sampling], [step])[0])
        generated.append(nxt)
        tokens.append(nxt)
        if eos_token is not None and nxt == eos_token:
            break
    return generated
