"""Recorded decode loops: persistent KV stacks, one closure call per tick.

The unrecorded decode tick (:meth:`repro.gen.session.GenCore._step`)
rebuilds its world every token: it zero-allocates per-layer
``(rows, heads, capacity, head_dim)`` stacks, copies every sequence's KV
cache into them, builds the extras dict, walks the decode plan's ~40
steps through the engine's Python loop, then copies each freshly
projected K/V row *back* into the per-sequence caches. All of that is
per-tick overhead the plan itself does not need.

:class:`DecodeRecording` is the recorded replacement. ``bind`` runs once
per batch *composition* (a sequence joined or finished): it allocates the
stacked caches at full capacity, loads each row either from the
sequence's prefill cache (first time) or from the previous recording's
stack (survivors), and preallocates one slot file with the extras — the
stacks and the shared fill array — bound permanently. From then on the
stacks *are* the KV caches: ``tick`` writes the token batch into slot 0,
runs the fused megastep (one compiled closure call — see
:mod:`repro.serving.record`), advances the fill array in place, and
returns the logits. ``kv_append`` inside the plan writes straight into
the persistent stacks, so there is no per-tick stacking, no writeback,
and no per-step Python between tokens.

Bit-exactness is preserved by construction: the fused plan runs the same
kernels in the same order, and padding a row's cache to full capacity
instead of the tick's exact maximum is invisible to
``cached_attention`` — masked positions get exact-zero weight and the
running-sum softmax denominator ignores exact-zero tails (see
:mod:`repro.vq.kernels`). The contract tests compare recorded output
bit for bit against the unrecorded engine and ``lut_generate``.
"""

from __future__ import annotations

import numpy as np

from ..serving.engine import _KERNELS
from ..serving.record import run_composite, run_composite_timed

__all__ = ["DecodeRecording"]


class DecodeRecording:
    """Persistent decode state for one batch composition.

    Owns the stacked per-layer K/V caches, the shared fill array (bound
    to both the ``positions`` and ``lengths`` extras — their values are
    identical on the decode step), and the preallocated slot file for a
    fused decode plan. ``sids`` names the bound row order; the session
    layer rebinds whenever the set or order of live sequences changes.
    """

    def __init__(self, plan, num_layers, num_heads, head_dim):
        self.plan = plan
        self.num_layers = int(num_layers)
        self.num_heads = int(num_heads)
        self.head_dim = int(head_dim)
        self.sids = ()
        self.fill = None
        self.k = []
        self.v = []
        self._slots = None

    # ------------------------------------------------------------------
    def bind(self, rows):
        """(Re)bind the recording to ``rows`` (``_Sequence`` objects).

        Rows whose ``cache`` is set are fresh from prefill: their
        per-sequence cache is copied in once and then dropped (the stack
        is the cache from here on — ``cache is None`` is the marker that
        a sequence's KV lives in the recording). Rows already bound copy
        forward from the previous stack, so rebinding costs one pass of
        slice copies, not a prefill replay.
        """
        plan = self.plan
        dtype = plan.dtype
        count = len(rows)
        capacity = max(s.prompt_len + s.max_new_tokens for s in rows)
        old_index = {}
        for i, sid in enumerate(self.sids):
            old_index.setdefault(sid, i)
        new_k = [np.zeros((count, self.num_heads, capacity, self.head_dim),
                          dtype=dtype) for _ in range(self.num_layers)]
        new_v = [np.zeros_like(k) for k in new_k]
        fill = np.zeros(count, dtype=np.int64)
        for i, seq in enumerate(rows):
            if seq.cache is not None:
                length = seq.cache.length
                for layer in range(self.num_layers):
                    new_k[layer][i, :, :length] = seq.cache.k[layer, :, :length]
                    new_v[layer][i, :, :length] = seq.cache.v[layer, :, :length]
            else:
                j = old_index[seq.sid]
                length = int(self.fill[j])
                for layer in range(self.num_layers):
                    new_k[layer][i, :, :length] = self.k[layer][j, :, :length]
                    new_v[layer][i, :, :length] = self.v[layer][j, :, :length]
            fill[i] = length
        for seq in rows:
            seq.cache = None
        self.k, self.v, self.fill = new_k, new_v, fill
        self.sids = tuple(seq.sid for seq in rows)
        slots = [None] * plan.num_slots
        extra = plan.extra_inputs
        # One shared array serves both extras: the new token's position
        # equals the cache fill, and no kernel mutates either operand.
        slots[extra["positions"]] = fill
        slots[extra["lengths"]] = fill
        for layer in range(self.num_layers):
            slots[extra["k_cache_%d" % layer]] = new_k[layer]
            slots[extra["v_cache_%d" % layer]] = new_v[layer]
        self._slots = slots

    # ------------------------------------------------------------------
    def tick(self, tokens, profiler=None):
        """Advance every bound row one token; returns the logits batch.

        The fast path is one compiled-closure call over the persistent
        slot file. With a profiler the *timed* compiled closure runs
        instead — identical arithmetic and slot discipline (only store
        slots are written back, so the persistent extras bindings are
        untouched), plus per-kernel profiler rows; the KV writes land in
        the bound stacks either way.
        """
        plan = self.plan
        slots = self._slots
        # Mirror execute_plan's batch conversion bit for bit: token ids
        # enter the plan in its float dtype.
        slots[0] = np.asarray(tokens, dtype=plan.dtype)
        for step in plan.steps:
            if step.kind == "composite":
                if profiler is None:
                    run_composite(plan, step, slots)
                else:
                    run_composite_timed(plan, step, slots, profiler)
            else:
                args = [slots[i] for i in step.inputs]
                slots[step.out] = _KERNELS[step.kind](step, *args)
        logits = slots[plan.output_slot]
        # The plan appended one K/V row per sequence at index ``fill``;
        # advancing in place updates positions and lengths for the next
        # tick through the same bound array.
        self.fill += 1
        return logits

    # ------------------------------------------------------------------
    def nbytes(self):
        """Bytes pinned by the stacked caches (the recording's KV state)."""
        return sum(k.nbytes + v.nbytes for k, v in zip(self.k, self.v))

    def __repr__(self):
        return "DecodeRecording(%s: %d rows, fill %s)" % (
            self.plan.model_name, len(self.sids),
            None if self.fill is None else self.fill.tolist())
