"""Autoregressive decoder serving: bucketed prefill, KV-cached decode.

The generation subsystem layers on the serving plan machinery:
:func:`compile_generation` turns a converted causal decoder into a
:class:`GenPlan` (per-bucket prefill plans with K/V taps + a decode-step
plan, all bound to one shared codebook/LUT block table),
:class:`GeneratorServer` serves it with batched prefill and a
continuous-batching decode loop streaming tokens per session —
replaying *recorded* fused plans (:class:`DecodeRecording`) on the
decode hot path so steady-state ticks cost one compiled-closure call
instead of a per-step Python loop — and
:func:`lut_generate` is the cacheless per-request reference the fp64
engine output is bit-identical to. Decoding policy is per session:
:class:`SamplingConfig` selects greedy (the default) or
temperature/top-k/top-p sampling with a counter-based RNG, so a
``(seed, prompt)`` pair names one reproducible stream on every path.
The cluster layer (:mod:`repro.cluster`) ships the same plans to worker
processes and streams tokens over TCP.
"""

from .compiler import (
    GenPlan,
    compile_generation,
    default_buckets,
    kv_tap_names,
    share_plan_tables,
)
from .record import DecodeRecording
from .reference import lut_generate, reference_logits
from .sampling import SamplingConfig, counter_uniform, sample_tokens
from .session import (
    GenConfig,
    GenCore,
    GenSession,
    GeneratorServer,
    KVCache,
)

__all__ = [
    "GenPlan",
    "compile_generation",
    "default_buckets",
    "kv_tap_names",
    "share_plan_tables",
    "lut_generate",
    "reference_logits",
    "DecodeRecording",
    "SamplingConfig",
    "counter_uniform",
    "sample_tokens",
    "KVCache",
    "GenCore",
    "GenConfig",
    "GenSession",
    "GeneratorServer",
]
