"""Batched sampling policies with a counter-based deterministic RNG.

Serving sampled traffic has a correctness problem greedy decode does not:
the output is stochastic, so "is the engine right?" stops being a bitwise
question unless the randomness itself is pinned down. This module pins it
down twice over:

1. **Counter-based randomness.** The uniform draw behind a sampled token
   is a pure function of ``(seed, step)`` — a splitmix64-style integer
   hash, not a stateful generator. No generator state means no
   order-of-arrival dependence: the same request produces the same stream
   whether it decodes alone, inside a continuous batch, on another shard,
   or over TCP, and a crashed worker's replacement reproduces it exactly.
2. **Row-independent vectorisation.** :func:`sample_tokens` draws one
   token per row of a logits batch, each row under its own
   :class:`SamplingConfig`, using only elementwise ops and per-row
   reductions along the vocabulary axis — so a row's token never depends
   on which other rows happen to share its decode tick (property-tested
   in ``tests/test_gen_sampling.py``).

Filtering follows the usual order: temperature scales the logits, top-k
keeps the k highest, top-p keeps the minimal probability-mass prefix of
what survived, and the renormalised distribution is inverted at the
counter uniform. Ties in the logits break toward the lower token id
(stable sort), which is also why ``temperature == 0`` — the greedy
default — is bitwise ``np.argmax``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SamplingConfig", "counter_uniform", "sample_tokens"]

_FIELDS = ("temperature", "top_k", "top_p", "seed")

# splitmix64 constants (Steele et al.); exact uint64 arithmetic makes the
# stream platform- and numpy-version-independent.
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_STEP_SALT = np.uint64(0xD1B54A32D192ED03)


class SamplingConfig:
    """One request's decoding policy.

    The default (``temperature=0``) is greedy argmax — the mode whose
    fp64 output is bit-identical to ``lut_generate`` and therefore the
    serving stack's reference contract. Any positive temperature samples;
    ``top_k`` / ``top_p`` filter the distribution first (both may be
    combined; with ``temperature=0`` they are irrelevant and ignored).
    ``seed`` keys the counter RNG: the token at decode step ``t`` is a
    pure function of ``(seed, t)`` and the (deterministic) logits, so a
    ``(seed, prompt)`` pair names one reproducible stream on every
    serving path.
    """

    __slots__ = _FIELDS

    def __init__(self, temperature=0.0, top_k=None, top_p=None, seed=0):
        temperature = float(temperature)
        if not temperature >= 0.0:  # also rejects NaN
            raise ValueError("temperature must be >= 0 (0 means greedy), "
                             "got %r" % (temperature,))
        if top_k is not None:
            top_k = int(top_k)
            if top_k < 1:
                raise ValueError("top_k must be >= 1 or None, got %r"
                                 % (top_k,))
        if top_p is not None:
            top_p = float(top_p)
            if not 0.0 < top_p <= 1.0:
                raise ValueError("top_p must be in (0, 1] or None, got %r"
                                 % (top_p,))
        seed = int(seed)
        if seed < 0:
            raise ValueError("seed must be a non-negative integer, got %r"
                             % (seed,))
        self.temperature = temperature
        self.top_k = top_k
        self.top_p = top_p
        self.seed = seed

    @property
    def greedy(self):
        return self.temperature == 0.0

    # -- wire format ----------------------------------------------------
    def to_dict(self):
        """Plain-JSON form (the TCP header / worker RPC payload)."""
        return {name: getattr(self, name) for name in _FIELDS}

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`; ``None`` means the greedy default.

        Missing keys take their defaults; unknown keys are rejected so a
        typo'd policy fails loudly instead of silently going greedy.
        """
        if data is None:
            return cls()
        if isinstance(data, SamplingConfig):
            return data
        unknown = sorted(set(data) - set(_FIELDS))
        if unknown:
            raise ValueError("unknown sampling fields %s (expected %s)"
                             % (unknown, list(_FIELDS)))
        return cls(**data)

    # -- value semantics -------------------------------------------------
    def _key(self):
        return tuple(getattr(self, name) for name in _FIELDS)

    def __eq__(self, other):
        if not isinstance(other, SamplingConfig):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self):
        return hash(self._key())

    def __repr__(self):
        if self.greedy:
            return "SamplingConfig(greedy)"
        parts = ["temperature=%g" % self.temperature]
        if self.top_k is not None:
            parts.append("top_k=%d" % self.top_k)
        if self.top_p is not None:
            parts.append("top_p=%g" % self.top_p)
        parts.append("seed=%d" % self.seed)
        return "SamplingConfig(%s)" % ", ".join(parts)


def _splitmix64(x):
    """Vectorised splitmix64 finaliser over uint64 arrays (wrapping)."""
    x = x + _GAMMA
    x = (x ^ (x >> np.uint64(30))) * _MIX1
    x = (x ^ (x >> np.uint64(27))) * _MIX2
    return x ^ (x >> np.uint64(31))


def counter_uniform(seeds, steps):
    """Uniform float64 draws in ``[0, 1)``, one per ``(seed, step)`` pair.

    Counter-based (no state): element ``i`` depends only on
    ``(seeds[i], steps[i])``, with full 53-bit mantissa resolution. This
    is the entire source of randomness in the sampling path, which is
    what makes a sampled stream reproducible across batching, sharding
    and the wire.
    """
    seeds = np.atleast_1d(np.asarray(seeds, dtype=np.uint64))
    steps = np.atleast_1d(np.asarray(steps, dtype=np.uint64))
    mixed = _splitmix64(_splitmix64(seeds) ^ (steps * _STEP_SALT))
    return (mixed >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


def sample_tokens(logits, policies, steps):
    """Draw one token per row of ``logits``, each row under its own policy.

    Parameters
    ----------
    logits:
        ``(rows, vocab)`` scores (any float dtype; promoted to float64 so
        the sampled stream is dtype-independent given identical logits).
    policies:
        One :class:`SamplingConfig` per row.
    steps:
        One non-negative decode-step index per row — the RNG counter
        (step 0 is the token sampled from the prefill logits).

    Returns the ``(rows,)`` int64 token ids. Greedy rows are bitwise
    ``np.argmax``; sampled rows invert the filtered, renormalised
    distribution at :func:`counter_uniform`. Every operation is
    elementwise or a per-row reduction, so a row's draw is independent of
    its batch neighbours.
    """
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 2:
        raise ValueError("logits must be (rows, vocab), got shape %r"
                         % (logits.shape,))
    rows, vocab = logits.shape
    policies = list(policies)
    steps = np.asarray(steps, dtype=np.int64).ravel()
    if len(policies) != rows or len(steps) != rows:
        raise ValueError("need one policy and one step per row: %d rows, "
                         "%d policies, %d steps"
                         % (rows, len(policies), len(steps)))
    if rows and steps.min() < 0:
        raise ValueError("decode step indices must be >= 0")

    temps = np.array([p.temperature for p in policies], dtype=np.float64)
    greedy = temps == 0.0
    if bool(np.all(greedy)):
        # Hot path: default greedy traffic never pays for a sort.
        return np.argmax(logits, axis=-1).astype(np.int64)
    # Descending stable sort: ties keep ascending token order, so
    # position 0 is exactly np.argmax's first-occurrence maximum.
    order = np.argsort(-logits, axis=-1, kind="stable")
    tokens = order[:, 0].astype(np.int64)

    ks = np.array([vocab if p.top_k is None else min(p.top_k, vocab)
                   for p in policies], dtype=np.int64)
    ps = np.array([1.0 if p.top_p is None else p.top_p for p in policies],
                  dtype=np.float64)
    uniforms = counter_uniform([p.seed for p in policies], steps)

    sorted_logits = np.take_along_axis(logits, order, axis=-1)
    safe_temps = np.where(greedy, 1.0, temps)
    # Shift by the row max before scaling: exp() stays in (0, 1], so a
    # tiny temperature underflows the tail to exact zeros (greedy limit)
    # instead of overflowing the head.
    scaled = (sorted_logits - sorted_logits[:, :1]) / safe_temps[:, None]
    mass = np.exp(scaled)
    position = np.arange(vocab)[None, :]
    mass = np.where(position < ks[:, None], mass, 0.0)
    probs = mass / mass.sum(axis=-1, keepdims=True)
    # Top-p keeps the minimal prefix whose mass reaches p: position j
    # survives iff the mass strictly before it is below p (position 0
    # always survives, so the filter can never empty a row).
    before = np.cumsum(probs, axis=-1) - probs
    mass = np.where(before < ps[:, None], mass, 0.0)
    probs = mass / mass.sum(axis=-1, keepdims=True)
    cdf = np.cumsum(probs, axis=-1)
    picked = np.sum(cdf <= uniforms[:, None], axis=-1)
    # Guard the u ~ 1 edge: float renormalisation can leave the final
    # kept cdf a ulp under 1, which would step past the support.
    last_kept = np.maximum((mass > 0.0).sum(axis=-1) - 1, 0)
    picked = np.minimum(picked, last_kept)
    sampled = np.take_along_axis(order, picked[:, None], axis=-1)[:, 0]
    return np.where(greedy, tokens, sampled).astype(np.int64)
