"""Compile a causal decoder LM into a generation plan.

Autoregressive serving needs two different compiled artifacts from one
model:

1. **Bucketed prefill plans.** The DAG tracer only produces fixed-shape
   plans, so variable-length prompts are served by compiling the model
   once per *sequence bucket* and right-padding each prompt to its
   smallest covering bucket. Causal masking makes the padding free: a pad
   token can only influence positions at or after itself, so the rows of
   real positions are bit-identical to unpadded execution (the property
   tests in ``tests/test_gen_kernels.py`` pin this down). Each bucket plan
   additionally *taps* the per-layer split-head K/V tensors
   (:func:`repro.serving.compiler.compile_model` ``taps=``), which is how
   one prefill pass both scores the prompt and fills the KV cache.

2. **A decode-step plan.** One step consumes a single new token per
   sequence against the cached K/V: embed token + position, and per layer
   project Q/K/V from the (batch, dim) activations, append K/V into the
   stacked caches (``kv_append``), and run fused masked attention over the
   cache (``cached_attention``). This plan is hand-lowered from the module
   structure rather than traced — cache mutation has no SSA form — but it
   reuses the exact same :class:`~repro.serving.compiler.KernelPlan`
   container, packed-buffer layout, step kinds and executor as every other
   plan, so it ships through the shared-memory plan store and runs on
   cluster workers unchanged.

Both artifacts execute the shared :mod:`repro.vq.kernels`, which is what
makes a full fp64 generation (prefill + N decode steps) bit-identical to
the per-request :func:`repro.gen.reference.lut_generate` reference.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..lutboost.lut_layers import LUTLinear
from ..nn.layers import Linear
from ..serving.compiler import (
    CompileError,
    KernelPlan,
    KernelStep,
    PRECISION_DTYPES,
    lut_block_views,
    pack_lut_specs,
    unique_array_bytes,
)

__all__ = ["GenPlan", "compile_generation", "default_buckets",
           "kv_tap_names", "share_plan_tables"]


def kv_tap_names(num_layers):
    """The tap names a decoder plan exposes: k0, v0, k1, v1, ..."""
    return [("k%d" % i, "v%d" % i) for i in range(num_layers)]


def default_buckets(max_len, smallest=8):
    """Power-of-two sequence buckets up to ``max_len`` (inclusive)."""
    buckets = []
    size = min(smallest, max_len)
    while size < max_len:
        buckets.append(size)
        size *= 2
    buckets.append(max_len)
    return tuple(sorted(set(buckets)))


class GenPlan:
    """Everything one decoder model needs to generate: buckets + decode.

    Attributes
    ----------
    prefill:
        ``{bucket_length: KernelPlan}`` — fixed-shape plans with per-layer
        K/V tap slots.
    decode:
        The single-token :class:`KernelPlan` (extra inputs: ``positions``,
        ``lengths``, per-layer ``k_cache_i`` / ``v_cache_i``).
    meta:
        Plain-dict geometry (picklable, shipped to cluster workers):
        ``num_layers``, ``num_heads``, ``head_dim``, ``dim``,
        ``vocab_size``, ``max_len``, ``pad_token``, ``precision``,
        ``recorded``.
    recorded_prefill / recorded_decode:
        Fused ("recorded") variants of the same plans — each one is a
        single composite megastep nesting the original steps by identity
        (see :func:`repro.serving.record.fuse_plan`), so they add no
        array storage and run the exact same kernels in the exact same
        order. ``None`` when compiled with ``record=False``.
    """

    def __init__(self, prefill, decode, meta, recorded_prefill=None,
                 recorded_decode=None):
        self.prefill = {int(length): plan for length, plan in prefill.items()}
        self.decode = decode
        self.meta = dict(meta)
        self.recorded_prefill = (
            None if recorded_prefill is None
            else {int(length): plan
                  for length, plan in recorded_prefill.items()})
        self.recorded_decode = recorded_decode

    @property
    def buckets(self):
        return tuple(sorted(self.prefill))

    @property
    def precision(self):
        return self.meta["precision"]

    @property
    def dtype(self):
        return self.decode.dtype

    @property
    def num_layers(self):
        return self.meta["num_layers"]

    @property
    def max_len(self):
        return self.meta["max_len"]

    def bucket_for(self, length):
        """Smallest bucket covering a prompt of ``length`` tokens."""
        for bucket in self.buckets:
            if bucket >= length:
                return bucket
        raise ValueError("prompt of %d tokens exceeds the largest bucket %d"
                         % (length, self.buckets[-1]))

    def pad_prompt(self, prompt):
        """Right-pad ``prompt`` into its bucket; returns (padded, bucket)."""
        prompt = np.asarray(prompt, dtype=np.int64).ravel()
        bucket = self.bucket_for(len(prompt))
        padded = np.full(bucket, self.meta["pad_token"], dtype=np.int64)
        padded[:len(prompt)] = prompt
        return padded, bucket

    def plans(self):
        """Every KernelPlan of this model: buckets (ascending) + decode."""
        return [self.prefill[bucket] for bucket in self.buckets] + [self.decode]

    def storage_bytes(self):
        """Actual bytes held across all plans (shared buffers counted
        once — after :func:`share_plan_tables` the codebook/LUT block and
        the dense weights exist once per *model*, not once per bucket)."""
        return unique_array_bytes(self.plans())

    def unshared_storage_bytes(self):
        """What the same plans would occupy with per-bucket copies (each
        plan charged in isolation) — the pre-sharing baseline the memory
        regression tests compare against."""
        return sum(unique_array_bytes([plan]) for plan in self.plans())

    def __repr__(self):
        return "GenPlan(%s: buckets %s, %d layers, %s)" % (
            self.decode.model_name, list(self.buckets),
            self.num_layers, self.precision)


# ----------------------------------------------------------------------
# Shared block tables
# ----------------------------------------------------------------------

def _rebind_lut_views(plan):
    """Point every lut_gemm step's operands back into the plan's (possibly
    rebound) packed blocks — the same views the packers build."""
    for step in plan.steps:
        if step.kind != "lut_gemm":
            continue
        layer = plan.layers[step.params["layer"]]
        (step.params["centroids"],
         step.params["table"]) = lut_block_views(plan.centroids, plan.tables,
                                                 layer, plan.c)


def share_plan_tables(plans):
    """Bind ``plans`` to one shared codebook/LUT block table, in place.

    Every plan of a generation model packs the same LUT operators in the
    same order (the trace follows the forward pass; the decode builder
    mirrors it), so their packed centroid/LUT blocks are bitwise equal —
    verified here, then collapsed onto the first plan's arrays with every
    ``lut_gemm`` step re-viewed into the shared blocks. Dense step
    operands (weights, biases, baked constants) are content-deduplicated
    across the plans the same way, so e.g. the token-embedding matrix
    exists once per model rather than once per bucket. Net effect: plan
    memory scales with the model, not with ``len(buckets)``.

    Sharing objects (not just bytes) is also what lets the cluster plan
    store serialise the whole group into a single shared-memory segment
    with one copy of every table (`SharedPlanStore.publish_group`).
    """
    if not plans:
        return plans
    first = plans[0]
    for plan in plans[1:]:
        if (plan.centroids.dtype != first.centroids.dtype
                or not np.array_equal(plan.centroids, first.centroids)
                or not np.array_equal(plan.tables, first.tables)):
            raise CompileError(
                "plan %s does not pack the same codebook/LUT blocks as %s; "
                "block tables can only be shared between plans compiled "
                "from the same converted model"
                % (plan.model_name, first.model_name))
        plan.centroids = first.centroids
        plan.tables = first.tables
        _rebind_lut_views(plan)
    pool = {}
    for plan in plans:
        for step in plan.steps:
            for key, value in step.params.items():
                if not isinstance(value, np.ndarray):
                    continue
                if step.kind == "lut_gemm" and key in ("centroids", "table"):
                    continue  # already views into the shared blocks
                # Key on a digest, not the raw bytes: keeping tobytes()
                # copies alive in the pool would transiently double the
                # very weights this function exists to deduplicate.
                digest = hashlib.blake2b(
                    np.ascontiguousarray(value).view(np.uint8).reshape(-1),
                    digest_size=16).digest()
                fingerprint = (value.dtype.str, value.shape, digest)
                step.params[key] = pool.setdefault(fingerprint, value)
    return plans


# ----------------------------------------------------------------------
# Decode-step plan construction
# ----------------------------------------------------------------------

class _DecodeBuilder:
    """Slot bookkeeping for the hand-lowered decode graph."""

    def __init__(self):
        self.steps = []          # (kind, inputs, out, params) — lut steps
        self.num_slots = 1       # slot 0 is the token batch
        self.extra_inputs = {}
        self.tap_slots = {}

    def new_slot(self):
        slot = self.num_slots
        self.num_slots += 1
        return slot

    def extra(self, name):
        slot = self.new_slot()
        self.extra_inputs[name] = slot
        return slot

    def emit(self, kind, inputs, **params):
        out = self.new_slot()
        self.steps.append((kind, tuple(inputs), out, params))
        return out

    def tap(self, name, slot):
        self.tap_slots[name] = slot


def _decoder_blocks(model):
    blocks = getattr(model, "blocks", None)
    if not blocks or not all(hasattr(b, "attn") and hasattr(b.attn, "k_proj")
                             for b in blocks):
        raise CompileError(
            "cannot compile generation plans for %s: expected a "
            "TransformerDecoderLM-style model (blocks of causal attention "
            "+ FFN)" % (type(model).__name__,))
    return blocks


def _emit_projection(builder, module, name, x_slot, dtype, export_precision,
                     specs):
    """Emit a Linear/LUTLinear projection of a (batch, features) slot."""
    if isinstance(module, LUTLinear):
        if not module.calibrated:
            raise CompileError(
                "cannot compile generation plans: LUT operator %r is not "
                "calibrated; run calibrate_model() first" % (name,))
        specs.append((name, module.export_kernel(export_precision)))
        return builder.emit("lut_gemm", [x_slot], spec_index=len(specs) - 1)
    if isinstance(module, Linear):
        return builder.emit(
            "gemm", [x_slot],
            weight=module.weight.data.astype(dtype),
            bias=None if module.bias is None
            else module.bias.data.astype(dtype))
    raise CompileError("cannot lower projection %r (%s) into a decode step"
                       % (name, type(module).__name__))


def _emit_layernorm(builder, norm, x_slot, dtype):
    return builder.emit("layernorm", [x_slot],
                        weight=norm.weight.data.astype(dtype),
                        bias=norm.bias.data.astype(dtype), eps=norm.eps)


def _pack_decode_specs(specs, dtype, model_name):
    """Pack the decode projections through the serving compiler's shared
    packer (one byte layout for every plan producer); a decode step
    touches one activation row per sample."""
    return pack_lut_specs([(name, 1, spec) for name, spec in specs],
                          dtype, model_name)


def _build_decode_plan(model, precision, name):
    """Hand-lower one decode step into a KernelPlan.

    Input slot 0 holds the (batch,) token ids; extra inputs carry the
    (batch,) positions and cache fills plus the stacked per-layer KV
    caches; taps expose the step's freshly projected K/V so the session
    layer can append them to its per-sequence caches.
    """
    dtype = PRECISION_DTYPES[precision]
    export_precision = "bf16+int8" if precision == "bf16+int8" else "fp32"
    blocks = _decoder_blocks(model)
    heads = model.num_heads
    head_dim = model.head_dim
    dim = model.dim
    scale = 1.0 / np.sqrt(head_dim)

    builder = _DecodeBuilder()
    specs = []
    positions = builder.extra("positions")
    lengths = builder.extra("lengths")
    caches = [(builder.extra("k_cache_%d" % i), builder.extra("v_cache_%d" % i))
              for i in range(len(blocks))]

    tok = builder.emit("embedding", [0],
                       weight=model.tok_embed.weight.data.astype(dtype))
    pos = builder.emit("embedding", [positions],
                       weight=model.pos_embed.weight.data.astype(dtype))
    x = builder.emit("add", [tok, pos])
    # cached_attention masks by *valid* rows, which include the row this
    # step appends at index ``lengths``.
    valid = builder.emit("add", [lengths], const=1)
    for i, block in enumerate(blocks):
        attn = block.attn
        h = _emit_layernorm(builder, block.norm1, x, dtype)
        q = _emit_projection(builder, attn.q_proj, "blocks.%d.attn.q_proj" % i,
                             h, dtype, export_precision, specs)
        k = _emit_projection(builder, attn.k_proj, "blocks.%d.attn.k_proj" % i,
                             h, dtype, export_precision, specs)
        v = _emit_projection(builder, attn.v_proj, "blocks.%d.attn.v_proj" % i,
                             h, dtype, export_precision, specs)
        q_h = builder.emit("reshape", [q], tail=(heads, head_dim))
        k_h = builder.emit("reshape", [k], tail=(heads, head_dim))
        v_h = builder.emit("reshape", [v], tail=(heads, head_dim))
        builder.tap("k%d" % i, k_h)
        builder.tap("v%d" % i, v_h)
        k_cache = builder.emit("kv_append", [caches[i][0], k_h, lengths])
        v_cache = builder.emit("kv_append", [caches[i][1], v_h, lengths])
        ctx = builder.emit("cached_attention", [q_h, k_cache, v_cache, valid],
                           scale=scale)
        ctx_flat = builder.emit("reshape", [ctx], tail=(dim,))
        out = _emit_projection(builder, attn.out_proj,
                               "blocks.%d.attn.out_proj" % i,
                               ctx_flat, dtype, export_precision, specs)
        x = builder.emit("add", [x, out])
        h2 = _emit_layernorm(builder, block.norm2, x, dtype)
        f = _emit_projection(builder, block.ffn_in, "blocks.%d.ffn_in" % i,
                             h2, dtype, export_precision, specs)
        g = builder.emit("gelu", [f])
        f2 = _emit_projection(builder, block.ffn_out, "blocks.%d.ffn_out" % i,
                              g, dtype, export_precision, specs)
        x = builder.emit("add", [x, f2])
    x = _emit_layernorm(builder, model.final_norm, x, dtype)
    logits = _emit_projection(builder, model.head, "head", x, dtype,
                              export_precision, specs)

    centroids, tables, layers, v, c, metric = _pack_decode_specs(
        specs, dtype, name)
    steps = []
    for kind, inputs, out, params in builder.steps:
        if kind == "lut_gemm":
            index = params["spec_index"]
            layer = layers[index]
            spec = specs[index][1]
            centroid_view, table_view = lut_block_views(
                centroids, tables, layer, c)
            steps.append(KernelStep(
                "lut_gemm", inputs=inputs, out=out,
                layer=index, op="linear", k=layer["k"],
                n_out=layer["n_out"],
                centroids=centroid_view,
                table=table_view,
                bias=None if spec["bias"] is None
                else spec["bias"].astype(dtype),
                metric=metric))
        else:
            steps.append(KernelStep(kind, inputs=inputs, out=out, **params))
    return KernelPlan(
        steps, centroids, tables, layers, v, c, metric, precision,
        input_shape=(), num_slots=builder.num_slots, output_slot=logits,
        model_name=name, tap_slots=builder.tap_slots,
        extra_inputs=builder.extra_inputs)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def compile_generation(model, buckets=None, precision="fp32",
                       sample_prompts=None, verify=True, name="",
                       record=True):
    """Compile a decoder LM into a :class:`GenPlan`.

    Parameters
    ----------
    model:
        A converted + calibrated :class:`~repro.models.TransformerDecoderLM`
        (or structurally equivalent causal decoder).
    buckets:
        Sequence-length buckets for prefill; defaults to powers of two up
        to ``model.max_len``. Prompts are right-padded to their smallest
        covering bucket.
    precision:
        Same vocabulary as the serving compiler: ``fp32`` / ``fp64`` /
        ``bf16+int8``. ``fp64`` is the bit-identical reference precision.
    sample_prompts:
        Optional ``(n, max_len)`` int array of representative token ids;
        each bucket traces and verifies on a slice of it. Random ids are
        generated when omitted.
    verify:
        Per-bucket plan verification (replay vs the model forward) — the
        standard :func:`compile_model` gate.
    record:
        Also build the fused ("recorded") plan variants that the session
        layer replays without per-step Python dispatch. Fusion nests the
        original steps by identity, so it costs no extra storage and
        cannot change any result; set ``record=False`` to serve from the
        interpreted plans only.
    """
    name = name or type(model).__name__
    blocks = _decoder_blocks(model)
    max_len = int(model.max_len)
    buckets = tuple(sorted(set(int(b) for b in (buckets or
                                                default_buckets(max_len)))))
    if not buckets:
        raise CompileError("at least one sequence bucket is required")
    if buckets[0] < 2:
        raise CompileError("sequence buckets must be >= 2 tokens")
    if buckets[-1] > max_len:
        raise CompileError("bucket %d exceeds the model's max_len %d"
                           % (buckets[-1], max_len))
    if sample_prompts is None:
        rng = np.random.default_rng(0)
        sample_prompts = rng.integers(0, model.vocab_size, size=(3, max_len))
    sample_prompts = np.asarray(sample_prompts)

    from ..serving.compiler import compile_model

    tap_pairs = kv_tap_names(len(blocks))

    def taps(m):
        out = {}
        for (k_name, v_name), block in zip(tap_pairs, m.blocks):
            out[k_name] = block.attn.last_k
            out[v_name] = block.attn.last_v
        return out

    prefill = {}
    for bucket in buckets:
        prefill[bucket] = compile_model(
            model, (bucket,), precision=precision,
            sample_input=sample_prompts[:3, :bucket], verify=verify,
            taps=taps, name="%s@prefill%d" % (name, bucket))

    decode = _build_decode_plan(model, precision, "%s@decode" % name)
    # All bucket plans and the decode plan pack identical blocks; collapse
    # them onto one shared table (verification above ran pre-sharing, and
    # rebinding bitwise-equal arrays cannot change any result).
    share_plan_tables([prefill[bucket] for bucket in buckets] + [decode])
    # Fuse AFTER sharing: the composite steps nest the shared-table step
    # objects by identity, and their closures compile lazily on first
    # run, so they always bind the final (deduplicated) arrays.
    recorded_prefill = None
    recorded_decode = None
    if record:
        from ..serving.record import fuse_plan

        recorded_prefill = {bucket: fuse_plan(prefill[bucket])
                            for bucket in buckets}
        recorded_decode = fuse_plan(decode)
    meta = {
        "num_layers": len(blocks),
        "num_heads": int(model.num_heads),
        "head_dim": int(model.head_dim),
        "dim": int(model.dim),
        "vocab_size": int(model.vocab_size),
        "max_len": max_len,
        "pad_token": 0,
        "precision": precision,
        "name": name,
        "recorded": bool(record),
    }
    return GenPlan(prefill, decode, meta, recorded_prefill, recorded_decode)
