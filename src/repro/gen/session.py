"""Generation sessions: KV caches, continuous batching, streaming.

Three layers, separated so the cluster can reuse the middle one:

- :class:`KVCache` — one sequence's per-layer K/V arrays at fixed capacity
  (``prompt + max_new_tokens``), filled by a prefill tap and appended to
  by every decode step. This is the worker-resident state of a session.
- :class:`GenCore` — a single-threaded generation state machine over one
  :class:`~repro.gen.compiler.GenPlan`: ``start``/``admit`` run prefill
  and register a sequence, ``step()`` advances *every* live sequence by
  one token as a single stacked decode batch (continuous batching —
  sequences join the batch the tick after their prefill lands and leave
  the tick they finish). Thread-unsafe by design; front-ends serialise.
- :class:`GeneratorServer` — the in-process front-end: per-bucket prefill
  micro-batchers (concurrent prompts of one bucket stack into one padded
  prefill), a decode thread driving ``GenCore.step``, and
  :class:`GenSession` streaming handles that yield tokens as they land.

Decode batches stack each sequence's caches into ``(batch, heads, T, hd)``
arrays padded to the longest member; masked attention gives padded slots
exactly zero weight, and a lone sequence is run as a duplicated pair (BLAS
dispatches single-row GEMMs differently), so every emitted token is
bit-identical at fp64 to the cacheless per-request reference — regardless
of which sequences happen to share a tick.
"""

from __future__ import annotations

import itertools
import threading
import time
import weakref

import numpy as np

from ..obs.contprof import tagged
from ..obs.metrics import METRICS
from ..obs.profiler import StepProfiler
from ..obs.telemetry import TokenTelemetry
from ..obs.tracer import TRACE
from ..serving.batcher import AdmissionError, MicroBatcher
from ..serving.engine import execute_plan
from .compiler import compile_generation
from .record import DecodeRecording
from .sampling import SamplingConfig, sample_tokens

__all__ = ["KVCache", "GenCore", "GenConfig", "GenSession",
           "GeneratorServer"]


class KVCache:
    """Per-sequence, per-layer K/V at fixed capacity (zero-initialised so
    stacked padding contributes exact zeros)."""

    def __init__(self, num_layers, num_heads, capacity, head_dim, dtype):
        self.k = np.zeros((num_layers, num_heads, capacity, head_dim),
                          dtype=dtype)
        self.v = np.zeros_like(self.k)
        self.length = 0

    @property
    def capacity(self):
        return self.k.shape[2]

    def load_prefill(self, k_layers, v_layers, length):
        """Adopt the first ``length`` positions of a prefill tap
        (per-layer ``(heads, bucket, head_dim)`` arrays)."""
        for layer, (k, v) in enumerate(zip(k_layers, v_layers)):
            self.k[layer, :, :length] = k[:, :length]
            self.v[layer, :, :length] = v[:, :length]
        self.length = length

    def append(self, k_new, v_new):
        """Append one position (``(layers, heads, head_dim)`` each)."""
        self.k[:, :, self.length] = k_new
        self.v[:, :, self.length] = v_new
        self.length += 1

    def nbytes(self):
        return self.k.nbytes + self.v.nbytes


class _Sequence:
    __slots__ = ("sid", "prompt_len", "cache", "next_token", "generated",
                 "max_new_tokens", "eos_token", "sampling", "done")

    def __init__(self, sid, prompt_len, cache, max_new_tokens, eos_token,
                 sampling):
        self.sid = sid
        self.prompt_len = prompt_len
        self.cache = cache
        self.next_token = None
        self.generated = []
        self.max_new_tokens = max_new_tokens
        self.eos_token = eos_token
        self.sampling = sampling
        self.done = False


class GenCore:
    """Generation state machine over one compiled :class:`GenPlan`.

    Not thread-safe: the single-process server guards it with a lock, the
    cluster worker drives it from its one RPC loop. Sequence ids are
    handed out by ``start``/``admit`` and retired automatically when a
    sequence finishes (``max_new_tokens`` reached or EOS emitted).
    """

    def __init__(self, plan, record=True):
        self.plan = plan
        meta = plan.meta
        self.num_layers = meta["num_layers"]
        self.num_heads = meta["num_heads"]
        self.head_dim = meta["head_dim"]
        self.max_len = meta["max_len"]
        self._sequences = {}
        self._ids = itertools.count()
        # Recorded decode: replay the fused megastep plan over persistent
        # KV stacks (no per-step Python, no per-tick stacking/writeback).
        # Falls back to the interpreted loop when the plan was compiled
        # without recorded variants or the caller opts out.
        self._record = (bool(record)
                        and getattr(plan, "recorded_decode", None) is not None)
        self._recording = None
        # TTFT/ITL per session (always on: a few appends per token is
        # noise next to a decode step); per-step profiling stays opt-in.
        # The model label strips the plan-variant suffix ("gpt@decode" →
        # "gpt") so prefill/decode/sampling series line up per model.
        self._model_label = plan.decode.model_name.rsplit("@", 1)[0]
        self.telemetry = TokenTelemetry(label=self._model_label)
        self.profiler = None
        label = self._model_label
        self._m_prefill = METRICS.histogram(
            "repro_gen_prefill_ms", "Prefill execution (ms)",
            labels=("model",)).labels(model=label)
        self._m_tick = METRICS.histogram(
            "repro_gen_decode_tick_ms", "Decode tick duration (ms)",
            labels=("model",)).labels(model=label)
        self._m_sampling = METRICS.histogram(
            "repro_gen_sampling_ms", "Token sampling (ms)",
            labels=("model",)).labels(model=label)
        # Live KV bytes as a callback gauge: evaluated at scrape time via
        # a weakref so a retired core never pins itself in the registry.
        # (Front-ends serialise core access, and cache_bytes only reads.)
        ref = weakref.ref(self)

        def _kv_bytes():
            core = ref()
            return float(core.cache_bytes()) if core is not None else 0.0

        METRICS.gauge(
            "repro_gen_kv_bytes", "KV cache bytes pinned by live sessions",
            labels=("model",)).labels(model=label).set_function(_kv_bytes)

    # ------------------------------------------------------------------
    def active(self):
        return len(self._sequences)

    @property
    def recording(self):
        """True when decode ticks replay the recorded megastep plan."""
        return self._record

    def prefill_plan(self, bucket):
        """The plan ``start`` (and the server's prefill batchers) should
        run for ``bucket`` — the fused variant when recording."""
        if self._record and self.plan.recorded_prefill is not None:
            fused = self.plan.recorded_prefill.get(bucket)
            if fused is not None:
                return fused
        return self.plan.prefill[bucket]

    def cache_bytes(self):
        """Worker-side KV memory currently pinned by live sequences.

        Recorded sequences live inside the shared stacks (their
        per-sequence cache is dropped at first bind), so the recording's
        footprint is charged once alongside any not-yet-bound caches."""
        total = sum(s.cache.nbytes() for s in self._sequences.values()
                    if s.cache is not None)
        if self._recording is not None:
            total += self._recording.nbytes()
        return total

    def validate(self, prompt, max_new_tokens):
        prompt = np.asarray(prompt, dtype=np.int64).ravel()
        if len(prompt) < 1:
            raise ValueError("prompt must hold at least one token")
        if max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if len(prompt) + max_new_tokens > self.max_len:
            raise ValueError(
                "prompt of %d + %d new tokens exceeds max_len %d"
                % (len(prompt), max_new_tokens, self.max_len))
        self.plan.bucket_for(len(prompt))
        return prompt

    # ------------------------------------------------------------------
    def start(self, prompt, max_new_tokens, eos_token=None, sampling=None):
        """Prefill one prompt (unbatched) and admit it; returns
        ``(sid, first_token, done)``."""
        opened_at = time.monotonic()
        prompt = self.validate(prompt, max_new_tokens)
        padded, bucket = self.plan.pad_prompt(prompt)
        t0 = time.perf_counter()
        with TRACE.span("gen.prefill", cat="gen", bucket=int(bucket),
                        prompt_len=int(len(prompt))), tagged("prefill"):
            logits, taps = execute_plan(self.prefill_plan(bucket),
                                        padded[None], return_taps=True,
                                        profiler=self.profiler)
        self._m_prefill.observe((time.perf_counter() - t0) * 1e3)
        return self.admit(prompt, logits[0],
                          {name: tap[0] for name, tap in taps.items()},
                          max_new_tokens, eos_token, sampling,
                          opened_at=opened_at)

    def admit(self, prompt, logits_rows, taps_row, max_new_tokens,
              eos_token=None, sampling=None, opened_at=None):
        """Register a prefilled sequence; returns ``(sid, first, done)``.

        ``logits_rows`` is the (bucket, vocab) prefill output for this
        request, ``taps_row`` its per-layer K/V tap slices. ``sampling``
        is the sequence's :class:`SamplingConfig` (``None`` = greedy);
        its first token is drawn at RNG counter 0. ``opened_at``
        backdates the telemetry clock to when the request entered the
        system, so TTFT includes prefill queueing, not just this call.
        """
        prompt = np.asarray(prompt, dtype=np.int64).ravel()
        sampling = SamplingConfig.from_dict(sampling)
        length = len(prompt)
        sid = next(self._ids)
        self.telemetry.open(sid, opened_at)
        cache = KVCache(self.num_layers, self.num_heads,
                        length + max_new_tokens, self.head_dim,
                        self.plan.dtype)
        cache.load_prefill([taps_row["k%d" % i] for i in range(self.num_layers)],
                           [taps_row["v%d" % i] for i in range(self.num_layers)],
                           length)
        seq = _Sequence(sid, length, cache, max_new_tokens, eos_token,
                        sampling)
        first = int(sample_tokens(np.asarray(logits_rows[length - 1])[None],
                                  [sampling], [0])[0])
        seq.generated.append(first)
        seq.next_token = first
        seq.done = (max_new_tokens == 1
                    or (eos_token is not None and first == eos_token))
        self.telemetry.token(sid)
        if not seq.done:
            self._sequences[sid] = seq
        else:
            self.telemetry.close(sid)
        return sid, first, seq.done

    def drop(self, sid):
        """Abandon a sequence (client went away); frees its KV cache."""
        self._sequences.pop(sid, None)
        self.telemetry.close(sid)

    # ------------------------------------------------------------------
    def step(self):
        """Advance every live sequence one token; returns
        ``[(sid, token, done), ...]`` (empty when nothing is active)."""
        seqs = list(self._sequences.values())
        if not seqs:
            self._recording = None  # batch drained: release the stacks
            return []
        t0 = time.perf_counter()
        with TRACE.span("decode.tick", cat="gen",
                        sessions=len(seqs)), tagged("decode"):
            if self._record:
                events = self._step_recorded(seqs)
            else:
                events = self._step(seqs)
        self._m_tick.observe((time.perf_counter() - t0) * 1e3)
        return events

    def step_many(self, max_ticks):
        """Replay up to ``max_ticks`` decode ticks back to back.

        The recorded fast path shines here: between ticks there is no
        admission, no stacking and no rebind, so the loop is one closure
        call per token. Stops early when the batch composition is about
        to change (a sequence finished) or the batch drains; returns the
        concatenated events."""
        events = []
        for _ in range(int(max_ticks)):
            tick = self.step()
            events.extend(tick)
            if not tick or any(done for _, _, done in tick):
                break
        return events

    def _step(self, seqs):
        profiler = self.profiler
        plan_name = self.plan.decode.model_name
        clock = profiler.clock if profiler is not None else None
        # A lone sequence is decoded as a duplicated pair: single-row
        # GEMMs take a different BLAS path whose bits differ from the
        # same row inside a taller matrix, and bit-identity to the
        # reference is the contract. Row 1's results are discarded.
        rows = seqs if len(seqs) > 1 else seqs * 2
        tokens = np.array([s.next_token for s in rows], dtype=np.int64)
        lengths = np.array([s.cache.length for s in rows], dtype=np.int64)
        capacity = int(lengths.max()) + 1
        extras = {"positions": lengths.copy(), "lengths": lengths}
        t0 = clock() if profiler is not None else 0.0
        for layer in range(self.num_layers):
            k_stack = np.zeros((len(rows), self.num_heads, capacity,
                                self.head_dim), dtype=self.plan.dtype)
            v_stack = np.zeros_like(k_stack)
            for i, s in enumerate(rows):
                fill = s.cache.length
                k_stack[i, :, :fill] = s.cache.k[layer, :, :fill]
                v_stack[i, :, :fill] = s.cache.v[layer, :, :fill]
            extras["k_cache_%d" % layer] = k_stack
            extras["v_cache_%d" % layer] = v_stack
        if profiler is not None:
            # The per-tick Python cost around the plan: cache stacking
            # before, sampling after — the dispatch overhead rows the
            # recorded-decode-loop roadmap item aims to delete.
            profiler.record(plan_name, "kv_stack", clock() - t0)
        logits, taps = execute_plan(self.plan.decode, tokens, extras=extras,
                                    return_taps=True, profiler=profiler)
        # One vectorised draw for the whole tick: row i is sampled under
        # sequence i's own policy at its own step counter (length of the
        # stream so far), so batch composition cannot shift any stream.
        t0 = clock() if profiler is not None else 0.0
        t_samp = time.perf_counter()
        chosen = sample_tokens(logits[:len(seqs)],
                               [s.sampling for s in seqs],
                               [len(s.generated) for s in seqs])
        self._m_sampling.observe((time.perf_counter() - t_samp) * 1e3)
        if profiler is not None:
            profiler.record(plan_name, "sampling", clock() - t0)
        events = []
        for i, s in enumerate(seqs):
            k_new = np.stack([taps["k%d" % layer][i]
                              for layer in range(self.num_layers)])
            v_new = np.stack([taps["v%d" % layer][i]
                              for layer in range(self.num_layers)])
            s.cache.append(k_new, v_new)
            token = int(chosen[i])
            s.generated.append(token)
            s.next_token = token
            s.done = (len(s.generated) >= s.max_new_tokens
                      or (s.eos_token is not None and token == s.eos_token))
            self.telemetry.token(s.sid)
            if s.done:
                del self._sequences[s.sid]
                self.telemetry.close(s.sid)
            events.append((s.sid, token, s.done))
        return events

    def _step_recorded(self, seqs):
        """One decode tick through the recorded megastep plan.

        Same arithmetic as :meth:`_step` — the fused plan nests the
        identical steps, the persistent full-capacity stacks are
        bit-equivalent to per-tick stacking (see
        :mod:`repro.gen.record`), and the lone-pair duplication rule is
        preserved. What disappears is the per-tick Python: stacking,
        extras dicts, tap writeback and the ~40-step dispatch loop all
        collapse into one ``tick`` call."""
        profiler = self.profiler
        plan = self.plan.recorded_decode
        plan_name = plan.model_name
        clock = profiler.clock if profiler is not None else None
        rows = seqs if len(seqs) > 1 else seqs * 2
        rec = self._recording
        if rec is None:
            rec = self._recording = DecodeRecording(
                plan, self.num_layers, self.num_heads, self.head_dim)
        if rec.sids != tuple(s.sid for s in rows):
            t0 = clock() if profiler is not None else 0.0
            rec.bind(rows)
            if profiler is not None:
                # The recorded analogue of the interpreted loop's
                # per-tick "kv_stack" row: paid only when the batch
                # composition changes, not per token.
                profiler.record(plan_name, "kv_bind", clock() - t0)
        tokens = np.array([s.next_token for s in rows], dtype=np.int64)
        logits = rec.tick(tokens, profiler)
        t0 = clock() if profiler is not None else 0.0
        t_samp = time.perf_counter()
        chosen = sample_tokens(logits[:len(seqs)],
                               [s.sampling for s in seqs],
                               [len(s.generated) for s in seqs])
        self._m_sampling.observe((time.perf_counter() - t_samp) * 1e3)
        if profiler is not None:
            profiler.record(plan_name, "sampling", clock() - t0)
        events = []
        for i, s in enumerate(seqs):
            token = int(chosen[i])
            s.generated.append(token)
            s.next_token = token
            s.done = (len(s.generated) >= s.max_new_tokens
                      or (s.eos_token is not None and token == s.eos_token))
            self.telemetry.token(s.sid)
            if s.done:
                del self._sequences[s.sid]
                self.telemetry.close(s.sid)
            events.append((s.sid, token, s.done))
        return events


# ----------------------------------------------------------------------
# Streaming front-end
# ----------------------------------------------------------------------

class GenConfig:
    """Tunables of one :class:`GeneratorServer` deployment."""

    def __init__(self, max_batch_size=16, max_wait_ms=2.0, max_pending=256,
                 precision="fp32", decode_idle_ms=2.0,
                 default_max_new_tokens=16, record=True):
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.max_pending = int(max_pending)
        self.precision = precision
        # How long the decode thread sleeps when no sequence is live.
        self.decode_idle_ms = float(decode_idle_ms)
        self.default_max_new_tokens = int(default_max_new_tokens)
        # Replay recorded (fused) plans on the decode/prefill hot paths;
        # False serves from the interpreted per-step loop instead.
        self.record = bool(record)

    def __repr__(self):
        return ("GenConfig(max_batch=%d, max_wait=%.1fms, precision=%r, "
                "record=%r)"
                % (self.max_batch_size, self.max_wait_ms, self.precision,
                   self.record))


class GenSession:
    """Streaming handle for one generation request.

    Iterate to receive tokens as the decode loop emits them, or call
    :meth:`result` to block for the full sequence. ``tokens`` accumulates
    everything emitted so far; every iterator replays from the start and
    then follows live, so iteration, re-iteration and ``result`` all
    compose (a finished session can be iterated any number of times).
    """

    def __init__(self, prompt, max_new_tokens):
        self.prompt = np.asarray(prompt, dtype=np.int64).ravel()
        self.max_new_tokens = max_new_tokens
        self.tokens = []
        self.error = None
        self._cond = threading.Condition()
        self._finished = threading.Event()

    # -- producer side (server threads) --------------------------------
    def _push(self, token):
        with self._cond:
            self.tokens.append(token)
            self._cond.notify_all()

    def _finish(self, error=None):
        if self._finished.is_set():
            return
        with self._cond:
            self.error = error
            self._finished.set()
            self._cond.notify_all()

    # -- consumer side --------------------------------------------------
    @property
    def done(self):
        return self._finished.is_set()

    def __iter__(self):
        index = 0
        while True:
            with self._cond:
                while (index >= len(self.tokens)
                       and not self._finished.is_set()):
                    self._cond.wait()
                if index >= len(self.tokens):
                    if self.error is not None:
                        raise self.error
                    return
                token = self.tokens[index]
                index += 1
            yield token

    def result(self, timeout=None):
        """Block until generation finishes; returns the token list."""
        if not self._finished.wait(timeout):
            raise TimeoutError("generation did not finish within %r s"
                               % (timeout,))
        if self.error is not None:
            raise self.error
        return list(self.tokens)


class GeneratorServer:
    """Serve autoregressive generation for one decoder model.

    Prefill goes through one micro-batcher per sequence bucket (concurrent
    prompts of a bucket stack into one padded batch through the serving
    engine); decode runs on a dedicated thread that advances all live
    sequences each tick through :meth:`GenCore.step` — sequences join and
    leave the shared batch per token. Tokens stream back through
    :class:`GenSession`.
    """

    def __init__(self, model, buckets=None, config=None, plan=None,
                 name=None):
        self.config = config or GenConfig()
        self.plan = plan or compile_generation(
            model, buckets=buckets, precision=self.config.precision,
            name=name or type(model).__name__, record=self.config.record)
        self.core = GenCore(self.plan, record=self.config.record)
        self._lock = threading.Lock()      # guards core + session map
        self._sessions = {}                # sid -> GenSession
        self._stop = threading.Event()
        self._closed = False
        self._batchers = {
            bucket: MicroBatcher(
                self._prefill_runner(bucket),
                max_batch_size=self.config.max_batch_size,
                max_wait_s=self.config.max_wait_ms / 1e3,
                workers=1,
                max_pending=self.config.max_pending,
                name="%s@prefill%d" % (self.core._model_label, bucket))
            for bucket in self.plan.buckets
        }
        self._decoder = threading.Thread(target=self._decode_loop,
                                         name="lut-gen-decode", daemon=True)
        self._decoder.start()

    # ------------------------------------------------------------------
    def _prefill_runner(self, bucket):
        plan = self.core.prefill_plan(bucket)

        def run(stacked):
            t0 = time.perf_counter()
            logits, taps = execute_plan(plan, stacked, return_taps=True,
                                        profiler=self.core.profiler)
            self.core._m_prefill.observe((time.perf_counter() - t0) * 1e3)
            return [
                (logits[i], {name: tap[i] for name, tap in taps.items()})
                for i in range(len(stacked))
            ]
        return run

    def _decode_loop(self):
        while not self._stop.is_set():
            try:
                with self._lock:
                    events = self.core.step()
                    pairs = [(self._sessions.get(sid), token, done)
                             for sid, token, done in events]
                    for sid, _, done in events:
                        if done:
                            self._sessions.pop(sid, None)
            except BaseException as exc:  # noqa: BLE001 - fail loudly
                # A decode-step failure would otherwise strand every live
                # session until its timeout; fail them with the cause.
                with self._lock:
                    broken = list(self._sessions.items())
                    self._sessions.clear()
                    for sid, _ in broken:
                        self.core.drop(sid)
                for _, session in broken:
                    session._finish(exc)
                continue
            for session, token, done in pairs:
                if session is None:
                    continue
                session._push(token)
                if done:
                    session._finish()
            if not events:
                self._stop.wait(self.config.decode_idle_ms / 1e3)

    # ------------------------------------------------------------------
    def generate(self, prompt, max_new_tokens=None, eos_token=None,
                 sampling=None):
        """Start one generation; returns a :class:`GenSession` stream.

        ``sampling`` is the per-session :class:`SamplingConfig` (``None``
        = greedy). Policies are per session within the shared decode
        batch: each tick samples every live row under its own config.
        """
        if self._closed:
            raise AdmissionError("generator server is shut down")
        opened_at = time.monotonic()
        max_new = (self.config.default_max_new_tokens
                   if max_new_tokens is None else int(max_new_tokens))
        sampling = SamplingConfig.from_dict(sampling)
        prompt = self.core.validate(prompt, max_new)
        session = GenSession(prompt, max_new)
        padded, bucket = self.plan.pad_prompt(prompt)
        future = self._batchers[bucket].submit(padded)

        def admit(fut):
            try:
                logits_rows, taps_row = fut.result()
                with self._lock:
                    sid, first, done = self.core.admit(
                        prompt, logits_rows, taps_row, max_new, eos_token,
                        sampling, opened_at=opened_at)
                    if not done:
                        self._sessions[sid] = session
                    # Push inside the critical section: once the lock
                    # drops, the decode thread may emit token 2 — the
                    # first token must already be queued.
                    session._push(first)
                if done:
                    session._finish()
            except BaseException as exc:  # noqa: BLE001 - fed to the waiter
                session._finish(exc)

        future.add_done_callback(admit)
        return session

    def generate_all(self, prompt, max_new_tokens=None, eos_token=None,
                     sampling=None, timeout=120.0):
        """Blocking convenience: full token list for one prompt."""
        return self.generate(prompt, max_new_tokens, eos_token,
                             sampling).result(timeout)

    # ------------------------------------------------------------------
    def active_sessions(self):
        with self._lock:
            return self.core.active()

    def enable_profiling(self):
        """Attach a :class:`StepProfiler` to prefill and decode steps."""
        with self._lock:
            if self.core.profiler is None:
                self.core.profiler = StepProfiler()
            return self.core.profiler

    def disable_profiling(self):
        with self._lock:
            self.core.profiler = None

    def profile(self):
        """Per-step measured aggregates, keyed by plan then step label
        (prefill plans and the decode plan report separately)."""
        with self._lock:
            profiler = self.core.profiler
        return profiler.snapshot() if profiler is not None else {}

    def metrics(self):
        """Token telemetry snapshot: TTFT and inter-token latency
        percentiles (``ttft_ms`` / ``itl_ms`` with p50/p99) plus the
        number of sequences currently in the decode batch."""
        with self._lock:
            snap = self.core.telemetry.snapshot()
            snap["live_sessions"] = self.core.active()
        return snap

    def shutdown(self, drain=True, timeout=30.0):
        """Stop the server; ``drain=True`` finishes live sequences first."""
        if self._closed:
            return
        self._closed = True
        deadline = threading.Event()
        for batcher in self._batchers.values():
            batcher.close(timeout, drain=drain)
        if drain:
            end = timeout
            step = 0.01
            while end > 0 and self.active_sessions():
                deadline.wait(step)
                end -= step
        self._stop.set()
        self._decoder.join(timeout)
        with self._lock:
            leftovers = list(self._sessions.values())
            self._sessions.clear()
        for session in leftovers:
            session._finish(AdmissionError(
                "generator server shut down before completion"))

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()

    def __repr__(self):
        return "GeneratorServer(%r, %r)" % (self.plan, self.config)
