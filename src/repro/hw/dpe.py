"""Distance Processing Element (dPE) cost model — Fig. 5 / Fig. 9.

One dPE compares a v-element input vector against one centroid per cycle:

- **L2**: v subtractors, v multipliers (squaring), an adder reduction tree,
  and the running-min comparator.
- **L1**: v absolute-difference units, an adder tree, comparator. No
  multipliers — the headline hardware saving of LUTBoost's L1 support.
- **Chebyshev**: v absolute-difference units, a *max* reduction tree,
  comparator. Cheapest of the three.

Precision selects the datapath number format ('fp32', 'fp16', 'bf16',
or 'int8'); the non-linear reduction-tree scaling the paper notes in
Sec. VI-A2 comes from the ceil(log2 v) tree depth.
"""

from __future__ import annotations

import numpy as np

from .arith import (
    abs_diff,
    comparator,
    fp_add,
    fp_mult,
    int_add,
    int_mult,
    max_unit,
)

__all__ = ["dpe_cost", "dpe_area_um2", "dpe_power_mw", "SIMILARITY_METRICS"]

SIMILARITY_METRICS = ("l2", "l1", "chebyshev")

_INT_PRECISIONS = {"int8": 8, "int4": 4, "int16": 16}


def _units(precision, node):
    """(add, mult, absdiff, max, compare) unit costs for the precision."""
    if precision in _INT_PRECISIONS:
        bits = _INT_PRECISIONS[precision]
        return (
            int_add(bits, node),
            int_mult(bits, node),
            abs_diff(bits, node),
            max_unit(bits, node),
            comparator(bits, node),
        )
    # Floating point: abs-diff is an FP subtract (sign flip is free),
    # max is an FP comparator + mux (exponent-first compare ~ int compare
    # on the packed representation).
    from .arith import FP_FORMATS

    total_bits, _ = FP_FORMATS[precision]
    return (
        fp_add(precision, node),
        fp_mult(precision, node),
        fp_add(precision, node),
        max_unit(total_bits, node),
        comparator(total_bits, node),
    )


def dpe_cost(v, metric="l2", precision="fp32", node=28):
    """Total :class:`UnitCost` of one dPE (per comparison energy).

    The reduction tree has v-1 two-input nodes; its cost is counted in
    full, which gives the slightly super-linear growth with v seen in
    Fig. 9 once the tree's extra pipeline registers (modelled as 15% of
    tree cost per level) are included.
    """
    if metric not in SIMILARITY_METRICS:
        raise ValueError("metric must be one of %s" % (SIMILARITY_METRICS,))
    if v < 1:
        raise ValueError("vector length must be >= 1")
    add, mult, adiff, mx, cmp_unit = _units(precision, node)
    tree_nodes = max(v - 1, 0)
    tree_depth = int(np.ceil(np.log2(v))) if v > 1 else 0
    register_overhead = 1.0 + 0.15 * tree_depth

    if metric == "l2":
        elementwise = (add + mult) * v  # subtract then square
        tree = add * tree_nodes
    elif metric == "l1":
        elementwise = adiff * v
        tree = add * tree_nodes
    else:  # chebyshev
        elementwise = adiff * v
        tree = mx * tree_nodes
    total = elementwise + tree * register_overhead + cmp_unit
    return total


def dpe_area_um2(v, metric="l2", precision="fp32", node=28):
    """Area in um^2 of one dPE."""
    return dpe_cost(v, metric, precision, node).area_um2


def dpe_power_mw(v, metric="l2", precision="fp32", node=28,
                 frequency_hz=300e6, activity=0.8):
    """Dynamic power of one dPE comparing once per cycle."""
    return dpe_cost(v, metric, precision, node).power_mw(frequency_hz, activity)
