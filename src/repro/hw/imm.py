"""In-Memory Matching Module (IMM) cost model — Fig. 4 / Table VII.

One IMM holds:

- **PSum LUT**: ping-pong pair of c x Tn entry tables (the resident slice
  of the precomputed LUT for one subspace / N-tile under LS dataflow);
- **Indices buffer**: M_tile indices of ceil(log2 c) bits;
- **Scratchpad** (PSum buffer): M_tile x Tn partial sums;
- **Accumulators**: Tn adders that fold a looked-up row into the
  scratchpad row each cycle.

The SRAM sizes reproduce Table VII exactly with 8-bit LUT entries and
8-bit scratchpad words:
    sram_kb = M*Tn/1024 + 2*c*Tn/1024 + M*log2(c)/8/1024.
"""

from __future__ import annotations

import numpy as np

from .arith import int_add
from .memory import SRAM

__all__ = ["IMMConfig", "imm_sram_kb", "imm_cost_breakdown", "imm_area_um2",
           "imm_power_mw", "imm_min_bandwidth_gbps"]


class IMMConfig:
    """Static configuration of one IMM.

    Parameters
    ----------
    c:
        Centroids per codebook (rows of the resident LUT).
    tn:
        N-dimension tile width (entries fetched per lookup).
    m_tile:
        Maximum activation rows buffered (scratchpad depth).
    lut_bits / acc_bits / index metadata follow Table VII's fits.
    """

    def __init__(self, c, tn, m_tile, lut_bits=8, acc_bits=8, node=28,
                 frequency_hz=300e6):
        self.c = int(c)
        self.tn = int(tn)
        self.m_tile = int(m_tile)
        self.lut_bits = int(lut_bits)
        self.acc_bits = int(acc_bits)
        self.node = node
        self.frequency_hz = frequency_hz

    @property
    def index_bits(self):
        return max(1, int(np.ceil(np.log2(self.c))))

    def __repr__(self):
        return "IMMConfig(c=%d, Tn=%d, M=%d)" % (self.c, self.tn, self.m_tile)


def imm_sram_kb(config):
    """Total IMM SRAM in KB (matches Table VII)."""
    scratch = config.m_tile * config.tn * config.acc_bits
    lut = 2 * config.c * config.tn * config.lut_bits  # ping-pong pair
    idx = config.m_tile * config.index_bits
    return (scratch + lut + idx) / 8.0 / 1024.0


def imm_min_bandwidth_gbps(config):
    """Minimum external bandwidth for stall-free LUT preloading.

    While the IMM consumes one LUT slice over ``m_tile`` lookup cycles, the
    ping-pong partner must receive the next c x Tn slice:
        bytes_per_s = (c * Tn * lut_bits / 8) / (m_tile / f).
    """
    slice_bytes = config.c * config.tn * config.lut_bits / 8.0
    seconds_per_tile = config.m_tile / config.frequency_hz
    return slice_bytes / seconds_per_tile / 1e9


def imm_cost_breakdown(config):
    """Dict of component -> (area um^2, power mW) for one IMM."""
    lut_sram = SRAM(2 * config.c * config.tn * config.lut_bits,
                    width=config.tn * config.lut_bits, node=config.node,
                    name="psum_lut")
    scratch = SRAM(config.m_tile * config.tn * config.acc_bits,
                   width=config.tn * config.acc_bits, node=config.node,
                   name="scratchpad")
    idx_buf = SRAM(max(config.m_tile * config.index_bits, 64),
                   width=config.index_bits, node=config.node, name="indices")
    # Tn accumulators fold the looked-up row into the scratchpad row.
    adder = int_add(config.acc_bits, config.node)
    acc_area = adder.area_um2 * config.tn
    acc_power = adder.power_mw(config.frequency_hz, activity=0.8) * config.tn

    def mem_cost(mem, reads_per_cycle=1.0, writes_per_cycle=0.0):
        power = (
            mem.dynamic_power_mw(config.frequency_hz, reads_per_cycle)
            + mem.write_energy_pj() * 1e-12 * config.frequency_hz
            * writes_per_cycle * 1e3
            + mem.leakage_mw()
        )
        return mem.area_um2(), power

    return {
        "psum_lut": mem_cost(lut_sram, reads_per_cycle=1.0,
                             writes_per_cycle=0.5),
        "scratchpad": mem_cost(scratch, reads_per_cycle=1.0,
                               writes_per_cycle=1.0),
        "indices_buffer": mem_cost(idx_buf, reads_per_cycle=1.0,
                                   writes_per_cycle=0.1),
        "accumulators": (acc_area, acc_power),
    }


def imm_area_um2(config):
    """Total IMM area in um^2."""
    return sum(a for a, _ in imm_cost_breakdown(config).values())


def imm_power_mw(config):
    """Total IMM power in mW."""
    return sum(p for _, p in imm_cost_breakdown(config).values())
