"""Hardware cost models: arithmetic units, memories, dPE/CCU/IMM, designs."""

from .accelerator import DESIGN1, DESIGN2, DESIGN3, LUTDLADesign, paper_designs
from .arith import (
    FP_FORMATS,
    UnitCost,
    abs_diff,
    comparator,
    fp_add,
    fp_mult,
    int_add,
    int_mult,
    max_unit,
)
from .ccu import CCUConfig, ccu_area_um2, ccu_cost_breakdown, ccu_power_mw
from .dpe import SIMILARITY_METRICS, dpe_area_um2, dpe_cost, dpe_power_mw
from .imm import (
    IMMConfig,
    imm_area_um2,
    imm_cost_breakdown,
    imm_min_bandwidth_gbps,
    imm_power_mw,
    imm_sram_kb,
)
from .memory import KB, RegisterFile, SRAM
from .scaling import (
    NODES,
    area_factor,
    delay_factor,
    energy_factor,
    scale_area,
    scale_efficiency,
    scale_energy,
    scale_power,
)

__all__ = [
    "UnitCost",
    "FP_FORMATS",
    "int_add",
    "int_mult",
    "fp_add",
    "fp_mult",
    "comparator",
    "abs_diff",
    "max_unit",
    "SRAM",
    "RegisterFile",
    "KB",
    "SIMILARITY_METRICS",
    "dpe_cost",
    "dpe_area_um2",
    "dpe_power_mw",
    "CCUConfig",
    "ccu_area_um2",
    "ccu_power_mw",
    "ccu_cost_breakdown",
    "IMMConfig",
    "imm_sram_kb",
    "imm_area_um2",
    "imm_power_mw",
    "imm_cost_breakdown",
    "imm_min_bandwidth_gbps",
    "LUTDLADesign",
    "DESIGN1",
    "DESIGN2",
    "DESIGN3",
    "paper_designs",
    "NODES",
    "area_factor",
    "energy_factor",
    "delay_factor",
    "scale_area",
    "scale_energy",
    "scale_power",
    "scale_efficiency",
]
