"""Centroid Computation Unit (CCU) cost model — Fig. 5.

A CCU is a pipeline of ``c`` dPEs (one per centroid) plus a centroid
register file and the input-vector staging registers. Fully pipelined, it
accepts one input vector per cycle and emits one argmin index per cycle
with ``c`` cycles of latency.
"""

from __future__ import annotations

from .dpe import dpe_cost
from .memory import RegisterFile

__all__ = ["CCUConfig", "ccu_area_um2", "ccu_power_mw", "ccu_cost_breakdown"]


class CCUConfig:
    """Static configuration of one CCU."""

    def __init__(self, v, c, metric="l2", precision="fp32", node=28,
                 frequency_hz=300e6):
        self.v = int(v)
        self.c = int(c)
        self.metric = metric
        self.precision = precision
        self.node = node
        self.frequency_hz = frequency_hz

    @property
    def datapath_bits(self):
        from .arith import FP_FORMATS

        if self.precision in FP_FORMATS:
            return FP_FORMATS[self.precision][0]
        return int(self.precision.replace("int", ""))

    def __repr__(self):
        return "CCUConfig(v=%d, c=%d, %s/%s)" % (
            self.v, self.c, self.metric, self.precision)


def ccu_cost_breakdown(config):
    """Dict of component -> (area um^2, power mW) for one CCU."""
    dpe = dpe_cost(config.v, config.metric, config.precision, config.node)
    dpe_area = dpe.area_um2 * config.c
    dpe_power = dpe.power_mw(config.frequency_hz, activity=0.8) * config.c

    bits = config.datapath_bits
    centroid_rf = RegisterFile(config.c * config.v * bits, config.v * bits,
                               node=config.node, name="centroid")
    # Each dPE stage re-registers the input vector (pipeline forwarding).
    input_regs = RegisterFile(max(config.c, 1) * config.v * bits,
                              config.v * bits, node=config.node, name="invec")
    return {
        "dpe_array": (dpe_area, dpe_power),
        "centroid_buffer": (
            centroid_rf.area_um2(),
            centroid_rf.dynamic_power_mw(config.frequency_hz)
            + centroid_rf.leakage_mw(),
        ),
        "input_registers": (
            input_regs.area_um2(),
            input_regs.dynamic_power_mw(config.frequency_hz)
            + input_regs.leakage_mw(),
        ),
    }


def ccu_area_um2(config):
    """Total CCU area in um^2."""
    return sum(a for a, _ in ccu_cost_breakdown(config).values())


def ccu_power_mw(config):
    """Total CCU power in mW."""
    return sum(p for _, p in ccu_cost_breakdown(config).values())
