"""Arithmetic-unit area and energy models (the "standard arithmetic
libraries" of paper Sec. VI-B3).

Models are calibrated to the widely used 45 nm measurements (Horowitz,
ISSCC 2014 "Computing's energy problem") and scaled to the paper's 28 nm
FD-SOI node via :mod:`repro.hw.scaling`:

============  ==========  ============
unit (45 nm)  energy (pJ)  area (um^2)
============  ==========  ============
INT8 add      0.03        36
INT32 add     0.1         137
INT8 mult     0.2         282
INT32 mult    3.1         3495
FP16 add      0.4         1360
FP32 add      0.9         4184
FP16 mult     1.1         1640
FP32 mult     3.7         7700
============  ==========  ============

Integer adders scale linearly with bitwidth, integer multipliers
quadratically; floating-point units are parameterised by mantissa width
(adders ~linear in mantissa due to alignment shifters, multipliers
~quadratic). These asymptotics are what make Fig. 1's ALU curves bend.
"""

from __future__ import annotations

from .scaling import scale_area, scale_energy

__all__ = [
    "FP_FORMATS",
    "int_add",
    "int_mult",
    "fp_add",
    "fp_mult",
    "comparator",
    "abs_diff",
    "max_unit",
    "UnitCost",
]

# Calibrated per-bit coefficients at 45 nm (from the table above).
_INT_ADD_ENERGY = 0.0033  # pJ / bit
_INT_ADD_AREA = 4.4  # um^2 / bit
_INT_MULT_ENERGY = 0.0031  # pJ / bit^2
_INT_MULT_AREA = 3.9  # um^2 / bit^2

# FP adder: cost ~ a * mantissa + b (alignment/normalisation shifters).
_FP_ADD_ENERGY = (0.0385, -0.023)
_FP_ADD_AREA = (217.0, -1027.0)
# FP multiplier: cost ~ a * mantissa^2 + b (mantissa multiplier dominates).
_FP_MULT_ENERGY = (0.005714, 0.409)
_FP_MULT_AREA = (13.32, 28.0)

# name -> (total bits, mantissa bits incl. hidden bit)
FP_FORMATS = {
    "fp64": (64, 53),
    "fp32": (32, 24),
    "fp16": (16, 11),
    "bf16": (16, 8),
    "fp8": (8, 4),
    "fp4": (4, 2),
}


class UnitCost:
    """Area (um^2) and energy per operation (pJ) of one hardware unit."""

    def __init__(self, area_um2, energy_pj):
        self.area_um2 = float(area_um2)
        self.energy_pj = float(energy_pj)

    def __add__(self, other):
        return UnitCost(self.area_um2 + other.area_um2,
                        self.energy_pj + other.energy_pj)

    def __mul__(self, factor):
        return UnitCost(self.area_um2 * factor, self.energy_pj * factor)

    __rmul__ = __mul__

    def power_mw(self, frequency_hz, activity=1.0):
        """Dynamic power at ``frequency_hz`` with the given activity factor."""
        return self.energy_pj * 1e-12 * frequency_hz * activity * 1e3

    def __repr__(self):
        return "UnitCost(area=%.1fum2, energy=%.4fpJ)" % (
            self.area_um2, self.energy_pj)


def _scaled(area, energy, node):
    return UnitCost(scale_area(area, 45, node), scale_energy(energy, 45, node))


def int_add(bits, node=28):
    """Integer/fixed-point adder cost (linear in bitwidth)."""
    bits = max(1, bits)
    return _scaled(_INT_ADD_AREA * bits, _INT_ADD_ENERGY * bits, node)


def int_mult(bits, node=28):
    """Integer multiplier cost (quadratic in bitwidth)."""
    bits = max(1, bits)
    return _scaled(_INT_MULT_AREA * bits**2, _INT_MULT_ENERGY * bits**2, node)


def _fp_params(precision):
    try:
        return FP_FORMATS[precision]
    except KeyError:
        raise ValueError(
            "unknown FP format %r (known: %s)" % (precision, sorted(FP_FORMATS))
        ) from None


def fp_add(precision="fp32", node=28):
    """Floating-point adder cost for a named format."""
    _, mantissa = _fp_params(precision)
    a_slope, a_icpt = _FP_ADD_AREA
    e_slope, e_icpt = _FP_ADD_ENERGY
    area = max(a_slope * mantissa + a_icpt, 50.0)
    energy = max(e_slope * mantissa + e_icpt, 0.01)
    return _scaled(area, energy, node)


def fp_mult(precision="fp32", node=28):
    """Floating-point multiplier cost for a named format."""
    _, mantissa = _fp_params(precision)
    a_slope, a_icpt = _FP_MULT_AREA
    e_slope, e_icpt = _FP_MULT_ENERGY
    area = max(a_slope * mantissa**2 + a_icpt, 60.0)
    energy = max(e_slope * mantissa**2 + e_icpt, 0.02)
    return _scaled(area, energy, node)


def comparator(bits, node=28):
    """Magnitude comparator: subtract + sign check, ~ an integer adder."""
    return int_add(bits, node)


def abs_diff(bits, node=28):
    """|a - b| unit: subtractor + conditional negate (~1.5 adders)."""
    return int_add(bits, node) * 1.5


def max_unit(bits, node=28):
    """max(a, b): comparator + mux (~1.2 adders)."""
    return int_add(bits, node) * 1.2
