"""Technology-node scaling (Stillmaker & Baas, Integration 2017).

Table VIII of the paper compares accelerators built on 7-40 nm processes by
scaling energy and area "to the same process node by scaling [54]". This
module provides that normalisation. We use the widely cited
Stillmaker-Baas-style factors: area scales with feature-size squared,
energy approximately linearly (sub-Dennard), delay linearly.

All factors are expressed relative to a 45 nm reference, the node of the
arithmetic-unit calibration data in :mod:`repro.hw.arith`.
"""

from __future__ import annotations

__all__ = ["NODES", "area_factor", "energy_factor", "delay_factor",
           "scale_area", "scale_energy", "scale_power", "scale_efficiency"]

# node (nm) -> (area factor, energy factor, delay factor) relative to 45 nm.
# Area follows (node/45)^2; energy and delay use the fitted Stillmaker-Baas
# general-purpose scaling curves (energy scales slightly slower than area).
NODES = {
    180: (16.0, 9.1, 4.0),
    130: (8.34, 5.4, 2.9),
    90: (4.0, 3.0, 2.0),
    65: (2.09, 1.9, 1.44),
    45: (1.0, 1.0, 1.0),
    40: (0.79, 0.84, 0.89),
    32: (0.51, 0.62, 0.71),
    28: (0.39, 0.54, 0.62),
    22: (0.24, 0.42, 0.49),
    16: (0.126, 0.31, 0.36),
    14: (0.097, 0.27, 0.31),
    10: (0.049, 0.21, 0.22),
    7: (0.024, 0.16, 0.16),
}


def _factors(node):
    try:
        return NODES[int(node)]
    except KeyError:
        raise ValueError(
            "unknown node %r nm (known: %s)" % (node, sorted(NODES))
        ) from None


def area_factor(node):
    """Area multiplier at ``node`` relative to 45 nm."""
    return _factors(node)[0]


def energy_factor(node):
    """Energy-per-op multiplier at ``node`` relative to 45 nm."""
    return _factors(node)[1]


def delay_factor(node):
    """Gate-delay multiplier at ``node`` relative to 45 nm."""
    return _factors(node)[2]


def scale_area(value, from_node, to_node):
    """Scale an area figure between nodes."""
    return value * area_factor(to_node) / area_factor(from_node)


def scale_energy(value, from_node, to_node):
    """Scale an energy figure between nodes."""
    return value * energy_factor(to_node) / energy_factor(from_node)


def scale_power(value, from_node, to_node):
    """Scale power assuming iso-frequency operation (power ~ energy rate)."""
    return scale_energy(value, from_node, to_node)


def scale_efficiency(gops_per_unit, from_node, to_node, kind):
    """Scale GOPS/mm^2 ('area') or GOPS/mW ('power') between nodes.

    Efficiency scales inversely with the resource: shrinking the node makes
    the denominator smaller, so efficiency goes *up* toward newer nodes.
    """
    if kind == "area":
        return gops_per_unit * area_factor(from_node) / area_factor(to_node)
    if kind == "power":
        return gops_per_unit * energy_factor(from_node) / energy_factor(to_node)
    raise ValueError("kind must be 'area' or 'power'")
