"""On-chip memory (SRAM / register file) compiler model.

The paper generates memories with ARM memory compilers at 28 nm FD-SOI;
we model SRAM macros with typical 28 nm densities and access energies:

- high-density 6T SRAM: ~0.35 um^2/bit including peripheral overhead for
  macro sizes in the tens-of-KB range, with overhead growing for tiny
  macros;
- read energy ~6 fJ/bit plus a wordline/sense fixed cost;
- register files: ~3x SRAM area per bit, cheaper per-access energy for
  narrow widths.

Leakage is modelled at ~10 uW per KB at 28 nm, which makes large resident
LUTs (the PQA design point) visibly power-hungry, as in Table IX.
"""

from __future__ import annotations

from .scaling import scale_area, scale_energy

__all__ = ["SRAM", "RegisterFile", "KB"]

KB = 1024 * 8  # bits per kilobyte

# 28 nm reference constants.
_SRAM_AREA_PER_BIT = 0.35  # um^2/bit for efficient macros
_SRAM_SMALL_MACRO_OVERHEAD = 2000.0  # um^2 fixed periphery per macro
_SRAM_READ_ENERGY_PER_BIT = 0.006  # pJ/bit
_SRAM_ACCESS_FIXED = 0.4  # pJ per access (decode + sense)
_SRAM_LEAKAGE_PER_KB = 0.01  # mW per KB
_RF_AREA_PER_BIT = 1.0  # um^2/bit
_RF_READ_ENERGY_PER_BIT = 0.003  # pJ/bit


class SRAM:
    """One SRAM macro of ``bits`` capacity accessed ``width`` bits at a time."""

    def __init__(self, bits, width, node=28, name=""):
        if bits <= 0 or width <= 0:
            raise ValueError("bits and width must be positive")
        self.bits = int(bits)
        self.width = int(width)
        self.node = node
        self.name = name

    @property
    def kilobytes(self):
        return self.bits / KB

    def area_um2(self):
        raw = self.bits * _SRAM_AREA_PER_BIT + _SRAM_SMALL_MACRO_OVERHEAD
        return scale_area(raw, 28, self.node)

    def read_energy_pj(self):
        raw = self.width * _SRAM_READ_ENERGY_PER_BIT + _SRAM_ACCESS_FIXED
        return scale_energy(raw, 28, self.node)

    def write_energy_pj(self):
        # Writes cost ~1.2x reads in typical 6T macros.
        return self.read_energy_pj() * 1.2

    def leakage_mw(self):
        raw = self.kilobytes * _SRAM_LEAKAGE_PER_KB
        return scale_energy(raw, 28, self.node)

    def dynamic_power_mw(self, frequency_hz, activity=1.0):
        """Power when read ``activity`` times per cycle at ``frequency_hz``."""
        return self.read_energy_pj() * 1e-12 * frequency_hz * activity * 1e3

    def __repr__(self):
        return "SRAM(%s: %.2fKB x %db)" % (self.name or "mem", self.kilobytes,
                                           self.width)


class RegisterFile:
    """Small multi-ported storage (centroid buffers, input vector regs)."""

    def __init__(self, bits, width, node=28, name=""):
        if bits <= 0 or width <= 0:
            raise ValueError("bits and width must be positive")
        self.bits = int(bits)
        self.width = int(width)
        self.node = node
        self.name = name

    @property
    def kilobytes(self):
        return self.bits / KB

    def area_um2(self):
        return scale_area(self.bits * _RF_AREA_PER_BIT, 28, self.node)

    def read_energy_pj(self):
        return scale_energy(self.width * _RF_READ_ENERGY_PER_BIT, 28, self.node)

    def leakage_mw(self):
        return scale_energy(self.kilobytes * _SRAM_LEAKAGE_PER_KB * 2, 28,
                            self.node)

    def dynamic_power_mw(self, frequency_hz, activity=1.0):
        return self.read_energy_pj() * 1e-12 * frequency_hz * activity * 1e3

    def __repr__(self):
        return "RegisterFile(%s: %.3fKB x %db)" % (
            self.name or "rf", self.kilobytes, self.width)
