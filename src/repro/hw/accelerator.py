"""Full LUT-DLA design PPA model (Eqs. 3-4) and the paper's three designs.

A design instantiates ``n_ccu`` CCUs and ``n_imm`` IMMs (Sec. IV-A). Peak
effective throughput counts the GEMM work the lookups replace: one lookup
retires Tn x v MACs, so

    peak_ops_per_cycle = 2 * v * Tn * n_imm          (MAC = 2 ops)
    peak_gops          = peak_ops_per_cycle * f / 1e9.

With the paper's published parameters (Table VII) this model reproduces
Table VIII's performance column exactly:
Design1 (v=3, Tn=128, 2 IMMs) -> 460.8 GOPS, Design2 -> 1228.8 GOPS,
Design3 -> 2764.8 GOPS at 300 MHz.
"""

from __future__ import annotations

from .ccu import CCUConfig, ccu_area_um2, ccu_power_mw
from .imm import IMMConfig, imm_area_um2, imm_min_bandwidth_gbps, imm_power_mw, imm_sram_kb

__all__ = ["LUTDLADesign", "DESIGN1", "DESIGN2", "DESIGN3", "paper_designs"]

# "Other" terms of Eqs. (3)-(4). Area: control, interconnect, FIFOs,
# prefetcher as a fraction of core area. Power: the component model counts
# only datapath + SRAM access energy; synthesized designs additionally burn
# clock tree, pipeline registers, prefetch logic and global-buffer traffic.
# The 2.5x power uplift is calibrated once against the paper's three
# synthesized design points (Table VIII) and applied uniformly.
_OTHER_AREA_OVERHEAD = 0.25
_OTHER_POWER_OVERHEAD = 2.5


class LUTDLADesign:
    """One point in the LUT-DLA hardware design space."""

    def __init__(self, name, v, c, tn, m_tile, n_ccu, n_imm, metric="l2",
                 precision="fp32", lut_bits=8, acc_bits=8, node=28,
                 frequency_hz=300e6):
        self.name = name
        self.v = int(v)
        self.c = int(c)
        self.tn = int(tn)
        self.m_tile = int(m_tile)
        self.n_ccu = int(n_ccu)
        self.n_imm = int(n_imm)
        self.metric = metric
        self.precision = precision
        self.node = node
        self.frequency_hz = frequency_hz
        self.ccu_config = CCUConfig(v, c, metric, precision, node, frequency_hz)
        self.imm_config = IMMConfig(c, tn, m_tile, lut_bits=lut_bits,
                                    acc_bits=acc_bits, node=node,
                                    frequency_hz=frequency_hz)

    # ------------------------------------------------------------------
    def area_um2(self):
        """Eq. (3): areaIMM * nIMM + areaCCU * nCCU + areaOther."""
        core = (imm_area_um2(self.imm_config) * self.n_imm
                + ccu_area_um2(self.ccu_config) * self.n_ccu)
        return core * (1.0 + _OTHER_AREA_OVERHEAD)

    def area_mm2(self):
        return self.area_um2() / 1e6

    def power_mw(self):
        """Eq. (4): powerIMM * nIMM + powerCCU * nCCU + powerOther."""
        core = (imm_power_mw(self.imm_config) * self.n_imm
                + ccu_power_mw(self.ccu_config) * self.n_ccu)
        return core * (1.0 + _OTHER_POWER_OVERHEAD)

    # ------------------------------------------------------------------
    def peak_ops_per_cycle(self):
        return 2 * self.v * self.tn * self.n_imm

    def peak_gops(self):
        return self.peak_ops_per_cycle() * self.frequency_hz / 1e9

    def area_efficiency(self):
        """GOPS / mm^2."""
        return self.peak_gops() / self.area_mm2()

    def power_efficiency(self):
        """GOPS / mW."""
        return self.peak_gops() / self.power_mw()

    # ------------------------------------------------------------------
    def sram_kb_per_imm(self):
        return imm_sram_kb(self.imm_config)

    def min_bandwidth_gbps(self):
        """Aggregate stall-free LUT-preload bandwidth over all IMMs."""
        return imm_min_bandwidth_gbps(self.imm_config) * self.n_imm

    def summary(self):
        return {
            "name": self.name,
            "v": self.v,
            "c": self.c,
            "tn": self.tn,
            "m_tile": self.m_tile,
            "n_ccu": self.n_ccu,
            "n_imm": self.n_imm,
            "area_mm2": self.area_mm2(),
            "power_mw": self.power_mw(),
            "peak_gops": self.peak_gops(),
            "area_eff_gops_mm2": self.area_efficiency(),
            "power_eff_gops_mw": self.power_efficiency(),
            "sram_kb_per_imm": self.sram_kb_per_imm(),
            "min_bandwidth_gbps": self.min_bandwidth_gbps(),
        }

    def __repr__(self):
        return "LUTDLADesign(%s: v=%d c=%d Tn=%d nCCU=%d nIMM=%d)" % (
            self.name, self.v, self.c, self.tn, self.n_ccu, self.n_imm)


# The paper's three searched designs (Table VII parameters).
DESIGN1 = LUTDLADesign("Design1-Tiny", v=3, c=16, tn=128, m_tile=256,
                       n_ccu=1, n_imm=2)
DESIGN2 = LUTDLADesign("Design2-Large", v=4, c=16, tn=256, m_tile=256,
                       n_ccu=1, n_imm=2)
DESIGN3 = LUTDLADesign("Design3-Fit", v=3, c=16, tn=768, m_tile=512,
                       n_ccu=2, n_imm=2)


def paper_designs():
    """The three Table VII/VIII designs, freshly constructed."""
    return [
        LUTDLADesign("Design1-Tiny", v=3, c=16, tn=128, m_tile=256,
                     n_ccu=1, n_imm=2),
        LUTDLADesign("Design2-Large", v=4, c=16, tn=256, m_tile=256,
                     n_ccu=1, n_imm=2),
        LUTDLADesign("Design3-Fit", v=3, c=16, tn=768, m_tile=512,
                     n_ccu=2, n_imm=2),
    ]
