"""Generation token telemetry: TTFT and inter-token latency percentiles.

:class:`TokenTelemetry` tracks two signals per generation session — time
to first token (TTFT: request admission to the first sampled token, so
prefill queueing and execution are inside it) and inter-token latency
(ITL: the gap between consecutive emitted tokens, the decode tick pace a
streaming client actually feels). Sessions report their own numbers while
live; completed observations pool into bounded reservoirs whose p50/p99
feed the ``GeneratorServer`` metrics and the cluster's ``op: stats``
snapshots. Snapshots are plain dicts: picklable over the worker pipe,
mergeable across shards, JSON-clean on the wire.
"""

from __future__ import annotations

import threading
import time

import numpy as np

__all__ = ["TokenTelemetry", "latency_stats"]


def _percentile(values, p):
    """Nearest-rank percentile of a float list (duplicated from
    serving.metrics to keep :mod:`repro.obs` dependency-free)."""
    if not len(values):
        return 0.0
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    rank = min(len(ordered) - 1,
               max(0, int(np.ceil(p / 100.0 * len(ordered))) - 1))
    return float(ordered[rank])


def latency_stats(seconds):
    """``{count, mean_ms, p50_ms, p99_ms, max_ms}`` for a sample list."""
    values = list(seconds)
    if not values:
        return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0,
                "max_ms": 0.0}
    return {
        "count": len(values),
        "mean_ms": float(np.mean(values)) * 1e3,
        "p50_ms": _percentile(values, 50) * 1e3,
        "p99_ms": _percentile(values, 99) * 1e3,
        "max_ms": float(np.max(values)) * 1e3,
    }


class _Live:
    __slots__ = ("opened_at", "first_at", "last_at", "itls")

    def __init__(self, opened_at):
        self.opened_at = opened_at
        self.first_at = None
        self.last_at = None
        self.itls = []


class TokenTelemetry:
    """Per-session TTFT/ITL tracking with pooled percentile reservoirs.

    ``open(sid)`` marks admission, ``token(sid)`` each emitted token,
    ``close(sid)`` retirement (idempotent; unknown sids are ignored so
    crash/drop paths need no bookkeeping). ``maxlen`` bounds the pooled
    reservoirs — old observations age out instead of growing the arrays
    under sustained traffic — and ``closed_keep`` bounds the
    recently-closed stash the same way (FIFO eviction: a session that
    finishes but is never polled again ages out instead of living
    forever). ``label`` additionally mirrors every TTFT/ITL observation
    into the process metrics registry (``repro_gen_ttft_ms`` /
    ``repro_gen_itl_ms`` histograms and the ``repro_gen_tokens_total``
    counter, labelled ``model=label``) — the SLO monitor's data source.
    """

    #: Default final-snapshot stash bound for recently-closed sessions,
    #: so the poll that *observes* a session finish can still report its
    #: numbers (override per instance with ``closed_keep``).
    CLOSED_KEEP = 64

    def __init__(self, maxlen=4096, closed_keep=None, label=None):
        self.maxlen = int(maxlen)
        self.closed_keep = int(self.CLOSED_KEEP if closed_keep is None
                               else closed_keep)
        self._lock = threading.Lock()
        self._live = {}
        self._closed = {}
        self._ttfts = []
        self._itls = []
        self._sessions = 0
        self._tokens = 0
        self.clock = time.monotonic
        self.label = label
        self._m_tokens = self._m_ttft = self._m_itl = None
        if label is not None:
            from .metrics import METRICS
            self._m_tokens = METRICS.counter(
                "repro_gen_tokens_total", "Generated tokens",
                labels=("model",)).labels(model=label)
            self._m_ttft = METRICS.histogram(
                "repro_gen_ttft_ms", "Time to first token (ms)",
                labels=("model",)).labels(model=label)
            self._m_itl = METRICS.histogram(
                "repro_gen_itl_ms", "Inter-token latency (ms)",
                labels=("model",)).labels(model=label)

    # ------------------------------------------------------------------
    def open(self, sid, opened_at=None):
        """Admit one session; ``opened_at`` backdates to the moment the
        request entered the system (queueing belongs in TTFT)."""
        now = self.clock()
        with self._lock:
            self._live[sid] = _Live(now if opened_at is None else opened_at)
            self._sessions += 1

    def token(self, sid):
        """Record one emitted token for ``sid`` (first token sets TTFT)."""
        now = self.clock()
        ttft = itl = None
        with self._lock:
            live = self._live.get(sid)
            if live is None:
                return
            self._tokens += 1
            if live.first_at is None:
                live.first_at = now
                ttft = now - live.opened_at
                self._ttfts.append(ttft)
                del self._ttfts[:-self.maxlen]
            else:
                itl = now - live.last_at
                live.itls.append(itl)
            live.last_at = now
        if self._m_tokens is not None:
            # Registry mirror outside the lock (the cells are per-thread
            # and lock-free); telemetry clocks are monotonic seconds.
            self._m_tokens.inc()
            if ttft is not None:
                self._m_ttft.observe(ttft * 1e3)
            elif itl is not None:
                self._m_itl.observe(itl * 1e3)

    def close(self, sid):
        """Retire a session, pooling its inter-token gaps."""
        with self._lock:
            live = self._live.pop(sid, None)
            if live is None:
                return
            self._itls.extend(live.itls)
            del self._itls[:-self.maxlen]
            self._closed[sid] = self._session_dict(live, done=True)
            while len(self._closed) > self.closed_keep:
                self._closed.pop(next(iter(self._closed)))

    # ------------------------------------------------------------------
    @staticmethod
    def _session_dict(live, done):
        ttft = (live.first_at - live.opened_at
                if live.first_at is not None else None)
        return {"tokens": len(live.itls) + (ttft is not None),
                "ttft_ms": None if ttft is None else ttft * 1e3,
                "itl_ms": latency_stats(live.itls),
                "done": done}

    def session_snapshot(self, sid):
        """This session's own numbers (``None`` for unknown sids).

        Recently-closed sessions still answer (``done: true``), so the
        poll that delivers a session's last token can carry its final
        TTFT/ITL back to the client."""
        with self._lock:
            live = self._live.get(sid)
            if live is None:
                return self._closed.get(sid)
            return self._session_dict(live, done=False)

    def snapshot(self):
        """Aggregate view: session/token counts + TTFT/ITL percentiles.

        Live sessions' inter-token gaps are included (a long-running
        stream should show up in the pace percentiles before it ends).
        """
        with self._lock:
            ttfts = list(self._ttfts)
            itls = list(self._itls)
            for live in self._live.values():
                itls.extend(live.itls)
            sessions = self._sessions
            tokens = self._tokens
            active = len(self._live)
        return {
            "sessions": sessions,
            "active_sessions": active,
            "tokens": tokens,
            "ttft_ms": latency_stats(ttfts),
            "itl_ms": latency_stats(itls),
        }

    @staticmethod
    def merge(snapshots):
        """Combine aggregate snapshots from many shards.

        Counts add; percentiles cannot be recovered from percentiles, so
        the merged p50/p99 are token-count-weighted means of the shard
        values — the standard dashboard approximation, labelled as such
        by construction (each shard's own snapshot stays exact).
        """
        snapshots = [s for s in snapshots if s]
        if not snapshots:
            return {"sessions": 0, "active_sessions": 0, "tokens": 0,
                    "ttft_ms": latency_stats([]), "itl_ms": latency_stats([])}
        out = {"sessions": 0, "active_sessions": 0, "tokens": 0}
        for key in ("sessions", "active_sessions", "tokens"):
            out[key] = sum(s[key] for s in snapshots)
        for field in ("ttft_ms", "itl_ms"):
            rows = [s[field] for s in snapshots if s[field]["count"]]
            total = sum(r["count"] for r in rows)
            if not total:
                out[field] = latency_stats([])
                continue
            out[field] = {
                "count": total,
                "mean_ms": sum(r["mean_ms"] * r["count"]
                               for r in rows) / total,
                "p50_ms": sum(r["p50_ms"] * r["count"] for r in rows) / total,
                "p99_ms": sum(r["p99_ms"] * r["count"] for r in rows) / total,
                "max_ms": max(r["max_ms"] for r in rows),
            }
        return out

    def __repr__(self):
        with self._lock:
            return "TokenTelemetry(%d sessions, %d live, %d tokens)" % (
                self._sessions, len(self._live), self._tokens)
