"""Trace exporters: Chrome trace-event JSON and a plain-text span tree.

``to_chrome_trace`` emits the Trace Event Format that ``chrome://tracing``
and Perfetto load directly (complete ``"X"`` events with microsecond
``ts``/``dur``, one process row per pid); ``from_chrome_trace`` is its
inverse, so a dumped trace round-trips back into span dicts — the schema
contract the tests pin. ``span_tree`` renders a stitched trace as an
indented tree for terminals and logs.
"""

from __future__ import annotations

import json

from .tracer import Span

__all__ = ["to_chrome_trace", "from_chrome_trace", "save_chrome_trace",
           "span_tree"]


def _as_dict(span):
    return span.to_dict() if isinstance(span, Span) else dict(span)


def to_chrome_trace(spans, process_names=None):
    """Spans -> Chrome trace-event document (a JSON-serialisable dict).

    Span identity (trace/span/parent ids) rides in each event's ``args``
    so nothing is lost in the round trip. ``process_names`` optionally
    maps pid -> label (e.g. ``{1234: "front-end", 1240: "shard 0"}``),
    emitted as ``process_name`` metadata events.
    """
    events = []
    pids = set()
    for span in spans:
        s = _as_dict(span)
        pids.add(s["pid"])
        events.append({
            "name": s["name"],
            "cat": s.get("cat", "obs"),
            "ph": "X",
            "ts": s["ts_us"],
            "dur": s["dur_us"],
            "pid": s["pid"],
            "tid": s["tid"],
            "args": dict(s.get("args", {}),
                         trace=s["trace"], span=s["span"],
                         parent=s.get("parent")),
        })
    for pid in sorted(pids):
        label = (process_names or {}).get(pid)
        if label:
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": label}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def from_chrome_trace(doc):
    """Chrome trace-event document -> span dicts (metadata events dropped).

    Accepts a dict, a JSON string, or the bare event list form.
    """
    if isinstance(doc, (str, bytes)):
        doc = json.loads(doc)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    spans = []
    for event in events:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        spans.append({
            "trace": args.pop("trace", None),
            "span": args.pop("span", None),
            "parent": args.pop("parent", None),
            "name": event["name"],
            "cat": event.get("cat", "obs"),
            "ts_us": event["ts"],
            "dur_us": event["dur"],
            "pid": event.get("pid", 0),
            "tid": event.get("tid", 0),
            "args": args,
        })
    spans.sort(key=lambda s: (s["ts_us"], s["span"] or 0))
    return spans


def save_chrome_trace(path, spans, process_names=None):
    """Write spans as a ``chrome://tracing``-loadable JSON file."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(spans, process_names), fh, indent=1)
    return path


def span_tree(spans):
    """Render spans as an indented text tree, one trace per root block.

    Children attach by parent span id; spans whose parent was evicted
    from a ring (or lives in an uncollected process) surface as roots of
    their trace rather than disappearing.
    """
    spans = [_as_dict(s) for s in spans]
    spans.sort(key=lambda s: (s["ts_us"], s["span"] or 0))
    by_id = {s["span"]: s for s in spans}
    children = {}
    roots = []
    for s in spans:
        parent = s.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(s)
        else:
            roots.append(s)
    lines = []

    def render(span, depth):
        extra = "".join(" %s=%s" % (k, v)
                        for k, v in sorted(span.get("args", {}).items()))
        dur = ("[instant]" if span["dur_us"] == 0
               else "%.3fms" % (span["dur_us"] / 1e3))
        lines.append("%s%s %s%s" % ("  " * depth, span["name"], dur, extra))
        for child in children.get(span["span"], []):
            render(child, depth + 1)

    seen_traces = []
    for root in roots:
        if root["trace"] not in seen_traces:
            seen_traces.append(root["trace"])
            lines.append("trace %s" % root["trace"])
        render(root, 1)
    return "\n".join(lines)
