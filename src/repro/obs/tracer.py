"""Low-overhead span tracing with request-scoped trace ids.

One :class:`Tracer` (the module singleton :data:`TRACE`) records *spans* —
named intervals on the shared monotonic clock — into per-thread ring
buffers. A thread only ever appends to its own ring (a bounded ``deque``,
whose append is atomic under the GIL), so the hot path takes no lock;
the global lock guards only ring registration and snapshotting.

Trace identity is a *context*: ``{"trace": hex_id, "span": parent_id}``
carried in a ``contextvars.ContextVar``. Spans opened while a context is
active join that trace as children; spans opened without one root a fresh
trace. Contexts serialise to plain dicts, which is how one request's id
follows it across thread pools (captured per queued request), worker
pipes (one slot in the RPC tuple) and TCP frames (a header field) — the
span records from every process stitch back together on the trace id.

Everything is built to be zero-cost when disabled: ``TRACE.enabled`` is a
plain attribute the instrumented call sites read once, and ``span()``
returns a shared no-op context manager without allocating. The
observability benchmark gates this (≤5% req/s on the serving sweep).
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager

__all__ = ["Span", "Tracer", "TRACE", "new_trace_id"]

# The active trace context: (trace_id, parent_span_id) or None.
_CTX = contextvars.ContextVar("repro_obs_trace", default=None)

# Span ids must be unique across every process contributing to one
# stitched trace (the front-end and each worker all record spans), so
# the per-process counter is offset by the pid: 22 pid bits above 31
# counter bits is exactly 53 bits, so ids stay exact in JSON/float64
# even for pids above 2^13 (the old 22+40 layout overflowed 2^53 there)
# and two concurrently-live processes can never mint the same id (Linux
# pid_max caps at 2^22). Computed at import — workers are spawned, so
# each child imports fresh. Wrapping the counter into a neighbour's
# range would take 2^31 spans; the ring buffers retain far fewer.
_SPAN_BASE = (os.getpid() & 0x3FFFFF) << 31
_COUNTER = itertools.count(1)


def new_trace_id():
    """A fresh 16-hex-digit trace id (random, collision-negligible)."""
    return os.urandom(8).hex()


def _new_span_id():
    # itertools.count advances atomically under the GIL: no lock.
    return _SPAN_BASE | (next(_COUNTER) & 0x7FFFFFFF)


class Span:
    """One recorded interval. Plain-dict convertible for pipes and wire.

    Times are microseconds on ``time.monotonic`` — boot-relative and
    system-wide on Linux, so spans recorded in different processes of one
    host share a clock and order correctly in a stitched trace.
    """

    __slots__ = ("trace", "span", "parent", "name", "cat", "ts_us",
                 "dur_us", "pid", "tid", "args")

    def __init__(self, trace, span, parent, name, cat, ts_us, dur_us,
                 pid, tid, args):
        self.trace = trace
        self.span = span
        self.parent = parent
        self.name = name
        self.cat = cat
        self.ts_us = ts_us
        self.dur_us = dur_us
        self.pid = pid
        self.tid = tid
        self.args = args

    def to_dict(self):
        return {"trace": self.trace, "span": self.span,
                "parent": self.parent, "name": self.name, "cat": self.cat,
                "ts_us": self.ts_us, "dur_us": self.dur_us,
                "pid": self.pid, "tid": self.tid, "args": dict(self.args)}

    @classmethod
    def from_dict(cls, d):
        return cls(d["trace"], d["span"], d.get("parent"), d["name"],
                   d.get("cat", "obs"), d["ts_us"], d["dur_us"],
                   d.get("pid", 0), d.get("tid", 0), dict(d.get("args", {})))

    def __repr__(self):
        return "Span(%s %s %.3fms)" % (self.trace, self.name,
                                       self.dur_us / 1e3)


class _NullSpan:
    """Shared no-op context manager — the whole disabled-tracing path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL = _NullSpan()


class _LiveSpan:
    """Context manager recording one span on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_token",
                 "trace", "span", "parent", "_t0")

    def __init__(self, tracer, name, cat, args):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self):
        ctx = _CTX.get()
        if ctx is None:
            self.trace, self.parent = new_trace_id(), None
        else:
            self.trace, self.parent = ctx
        self.span = _new_span_id()
        self._token = _CTX.set((self.trace, self.span))
        self._t0 = time.monotonic()
        return self

    def __exit__(self, *exc):
        t1 = time.monotonic()
        _CTX.reset(self._token)
        self._tracer._record(Span(
            self.trace, self.span, self.parent, self._name, self._cat,
            int(self._t0 * 1e6), int((t1 - self._t0) * 1e6),
            os.getpid(), threading.get_ident(), self._args))
        return False


class Tracer:
    """Span recorder over per-thread ring buffers.

    ``capacity`` bounds each thread's ring: a runaway trace evicts its own
    oldest spans instead of growing without bound. All reads
    (:meth:`spans`, :meth:`drain`) snapshot under the registry lock.
    """

    def __init__(self, capacity=4096):
        self.enabled = False
        self.capacity = int(capacity)
        self._local = threading.local()
        self._rings = []  # [(owning thread, ring)] — pruned on snapshot
        # Spans of exited threads, folded here when their ring is pruned
        # so a short-lived worker thread's spans survive it; one shared
        # bounded ring, so a churning thread pool cannot grow the
        # registry (the leak this replaces) or the retained history.
        self._retired = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------
    def _record(self, span):
        ring = getattr(self._local, "ring", None)
        if ring is None:
            ring = deque(maxlen=self.capacity)
            self._local.ring = ring
            with self._lock:
                self._rings.append((threading.current_thread(), ring))
        ring.append(span)

    def span(self, name, cat="obs", **args):
        """Context manager timing one interval (no-op when disabled)."""
        if not self.enabled:
            return _NULL
        return _LiveSpan(self, name, cat, args)

    def record_span(self, name, start_s, end_s, ctx=None, cat="obs",
                    **args):
        """Record a span from explicit ``time.monotonic`` endpoints.

        For call sites that learn a span's extent after the fact (the
        batcher resolves a request long after it was enqueued). ``ctx``
        is a captured context dict/tuple; ``None`` falls back to the
        caller's active context, and a missing trace roots a new one.
        """
        if not self.enabled:
            return None
        if ctx is None:
            ctx = _CTX.get()
        elif isinstance(ctx, dict):
            ctx = (ctx["trace"], ctx.get("span"))
        trace, parent = ctx if ctx is not None else (new_trace_id(), None)
        span = Span(trace, _new_span_id(), parent, name, cat,
                    int(start_s * 1e6), int((end_s - start_s) * 1e6),
                    os.getpid(), threading.get_ident(), args)
        self._record(span)
        return span

    def instant(self, name, cat="obs", **args):
        """Record a zero-duration event under the current context."""
        if not self.enabled:
            return
        ctx = _CTX.get()
        trace, parent = ctx if ctx is not None else (new_trace_id(), None)
        self._record(Span(trace, _new_span_id(), parent, name, cat,
                          int(time.monotonic() * 1e6), 0,
                          os.getpid(), threading.get_ident(), args))

    # -- context propagation -------------------------------------------
    @staticmethod
    def current():
        """The active ``(trace_id, parent_span_id)`` tuple, or None."""
        return _CTX.get()

    @staticmethod
    def context():
        """The active context as a wire-safe dict, or None."""
        ctx = _CTX.get()
        if ctx is None:
            return None
        return {"trace": ctx[0], "span": ctx[1]}

    @staticmethod
    @contextmanager
    def activated(ctx):
        """Adopt a wire context (dict, tuple or None) for the with-body."""
        if ctx is None:
            yield
            return
        if isinstance(ctx, dict):
            ctx = (ctx["trace"], ctx.get("span"))
        token = _CTX.set((ctx[0], ctx[1]))
        try:
            yield
        finally:
            _CTX.reset(token)

    def run_with(self, ctx, fn, *args, **kwargs):
        """Call ``fn`` with ``ctx`` active — the cross-thread hop helper
        (executor threads do not inherit the submitting context)."""
        with self.activated(ctx):
            return fn(*args, **kwargs)

    @contextmanager
    def tracing(self, ctx=None):
        """Force-enable tracing for the with-body, optionally under a
        foreign context — how workers and the TCP front-end honour a
        traced request without flipping their process-global switch."""
        was = self.enabled
        self.enabled = True
        try:
            with self.activated(ctx):
                yield
        finally:
            self.enabled = was

    # -- lifecycle ------------------------------------------------------
    def enable(self):
        self.enabled = True

    def disable(self):
        self.enabled = False

    # -- reading --------------------------------------------------------
    def _live_rings(self):
        """Prune rings of exited threads (folding their spans into the
        shared retired ring) and return the live ones. Caller holds the
        lock. Keeps the registry bounded by *live* threads, not by every
        thread that ever recorded — a long-lived server with churning
        thread pools used to grow ``_rings`` without bound."""
        live = []
        for thread, ring in self._rings:
            if thread.is_alive():
                live.append((thread, ring))
            else:
                self._retired.extend(ring)
        self._rings[:] = live
        return [ring for _, ring in live]

    def spans(self, trace_id=None):
        """Snapshot recorded spans (optionally one trace), oldest first."""
        with self._lock:
            rings = self._live_rings()
            out = list(self._retired)
        for ring in rings:
            out.extend(list(ring))
        if trace_id is not None:
            out = [s for s in out if s.trace == trace_id]
        out.sort(key=lambda s: (s.ts_us, s.span))
        return out

    def ring_count(self):
        """Live per-thread rings currently registered (post-prune)."""
        with self._lock:
            return len(self._live_rings())

    def clear(self):
        with self._lock:
            rings = self._live_rings()
            self._retired.clear()
        for ring in rings:
            ring.clear()

    def __repr__(self):
        return "Tracer(%s, %d spans buffered)" % (
            "enabled" if self.enabled else "disabled", len(self.spans()))


#: Process-wide tracer every instrumented layer records into. One
#: singleton (rather than per-server tracers) is what lets a single
#: trace id stitch spans from the TCP front-end, the batcher threads and
#: the router without threading a tracer object through every API.
TRACE = Tracer()
