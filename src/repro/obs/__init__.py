"""Observability: tracing, profiling, telemetry, metrics, SLOs, flights.

The measurement layer under the whole serving stack, with no dependency
on it (so every subsystem can import obs without cycles):

- ``tracer`` — monotonic-clock spans in per-thread ring buffers with
  request-scoped trace ids propagated via contextvars, worker-pipe slots
  and TCP headers; zero-cost when disabled (:data:`TRACE` is the
  process-wide singleton all instrumented layers record into).
- ``profiler`` — :class:`StepProfiler`, the opt-in per-step timing hook
  of ``execute_plan``: measured milliseconds per step kind and module,
  lined up against :class:`CyclePredictor` predicted cycles.
- ``export`` — Chrome trace-event JSON (``chrome://tracing``/Perfetto
  loadable, round-trippable) and a plain-text span tree.
- ``telemetry`` — :class:`TokenTelemetry`: TTFT and inter-token latency
  percentiles per generation session and pooled per server/shard.
- ``metrics`` — :class:`MetricsRegistry` (:data:`METRICS` singleton):
  Prometheus-style labelled counters/gauges/histograms with per-thread
  write cells, cross-process snapshot merging and text exposition.
- ``slo`` — :class:`SLOMonitor`: per-second good/total rings over the
  registry, evaluating declared :class:`Objective` s with multi-window
  burn-rate alerting.
- ``flight`` — :class:`FlightRecorder`: tail-sampled retention of
  completed request traces (SLO breach / error / random sample) in a
  bounded ring, exportable as Chrome-trace JSON.
- ``contprof`` — :class:`WallClockSampler` (:data:`SAMPLER` singleton):
  always-on wall-clock stack sampling into bounded folded-stack
  aggregates, tagged per thread via :func:`tagged`, merged cluster-wide
  and rendered as collapsed-stack text or pprof-style JSON.
- ``drift`` — :class:`DriftDetector`: continuous join of measured step
  milliseconds against predicted cycles, per-layer EWMA calibration and
  band alerts — does the router's cost model still track reality?
"""

from .contprof import (
    SAMPLER,
    WallClockSampler,
    configure_sampler,
    diff_profiles,
    merge_profiles,
    render_collapsed,
    tagged,
    to_pprof,
)
from .drift import DriftDetector, RepricingPolicy
from .export import (
    from_chrome_trace,
    save_chrome_trace,
    span_tree,
    to_chrome_trace,
)
from .flight import FlightRecorder
from .metrics import (
    METRICS,
    MetricsRegistry,
    merge_snapshots,
    render_text,
)
from .profiler import StepProfiler, step_label
from .slo import Objective, SLOMonitor, default_objectives
from .telemetry import TokenTelemetry, latency_stats
from .tracer import TRACE, Span, Tracer, new_trace_id

__all__ = [
    "Span",
    "Tracer",
    "TRACE",
    "new_trace_id",
    "StepProfiler",
    "step_label",
    "to_chrome_trace",
    "from_chrome_trace",
    "save_chrome_trace",
    "span_tree",
    "TokenTelemetry",
    "latency_stats",
    "MetricsRegistry",
    "METRICS",
    "merge_snapshots",
    "render_text",
    "Objective",
    "SLOMonitor",
    "default_objectives",
    "FlightRecorder",
    "WallClockSampler",
    "SAMPLER",
    "configure_sampler",
    "tagged",
    "merge_profiles",
    "diff_profiles",
    "render_collapsed",
    "to_pprof",
    "DriftDetector",
    "RepricingPolicy",
]
