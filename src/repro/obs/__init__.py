"""Observability: request tracing, per-kernel profiling, token telemetry.

The measurement layer under the whole serving stack, with no dependency
on it (so every subsystem can import obs without cycles):

- ``tracer`` — monotonic-clock spans in per-thread ring buffers with
  request-scoped trace ids propagated via contextvars, worker-pipe slots
  and TCP headers; zero-cost when disabled (:data:`TRACE` is the
  process-wide singleton all instrumented layers record into).
- ``profiler`` — :class:`StepProfiler`, the opt-in per-step timing hook
  of ``execute_plan``: measured milliseconds per step kind and module,
  lined up against :class:`CyclePredictor` predicted cycles.
- ``export`` — Chrome trace-event JSON (``chrome://tracing``/Perfetto
  loadable, round-trippable) and a plain-text span tree.
- ``telemetry`` — :class:`TokenTelemetry`: TTFT and inter-token latency
  percentiles per generation session and pooled per server/shard.
"""

from .export import (
    from_chrome_trace,
    save_chrome_trace,
    span_tree,
    to_chrome_trace,
)
from .profiler import StepProfiler, step_label
from .telemetry import TokenTelemetry, latency_stats
from .tracer import TRACE, Span, Tracer, new_trace_id

__all__ = [
    "Span",
    "Tracer",
    "TRACE",
    "new_trace_id",
    "StepProfiler",
    "step_label",
    "to_chrome_trace",
    "from_chrome_trace",
    "save_chrome_trace",
    "span_tree",
    "TokenTelemetry",
    "latency_stats",
]
