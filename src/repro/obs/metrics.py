"""Prometheus-style metrics registry: counters, gauges, histograms.

The counter plane under the serving stack. Three metric kinds, all
labelled, all living in one :class:`MetricsRegistry` (the module
singleton :data:`METRICS` by default):

- **Counter** — monotonically increasing totals (requests served,
  admission rejections, tokens emitted).
- **Gauge** — last-write-wins point-in-time values, plus *callback*
  gauges (``set_function``) evaluated lazily at scrape time — how queue
  depth, outstanding router cycles and KV bytes are exported without a
  write on any hot path.
- **Histogram** — fixed-bucket latency/size distributions with
  cumulative bucket counts, a sum and a count (the standard Prometheus
  ``le`` semantics), which is what the SLO monitor's threshold
  compliance is computed from. Observations made under an active trace
  context additionally stamp that bucket's *exemplar* (value +
  trace id), rendered in OpenMetrics ``# {trace_id="..."}`` form — the
  bridge from a slow bucket to the flight recorder's full trace.

Hot-path writes are lock-free: counters and histograms write into
*per-thread cells* (each thread's first touch of a labelled child
registers a private cell under the family lock; after that every
``inc``/``observe`` mutates thread-local state only, like the tracer's
per-thread rings). ``snapshot()`` merges the cells under the lock —
folding cells of exited threads into a retained base first, so totals
survive thread-pool churn without the registry growing unboundedly.

Snapshots are plain JSON-clean dicts. Series are keyed by a
self-describing ``"label=value,label=value"`` string (sorted by label
name, with the registry's ``constant_labels`` — e.g. a worker's shard
index — folded in), so snapshots from processes with different constant
labels merge cleanly: :func:`merge_snapshots` sums counters and
histogram buckets and takes gauges additively. :func:`render_text`
emits the Prometheus text exposition format for the whole snapshot.
Label values must not contain ``,`` or ``=`` (they are model names, op
names and shard indices throughout this codebase).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from .tracer import Tracer

__all__ = [
    "MetricsRegistry",
    "METRICS",
    "merge_snapshots",
    "render_text",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
]

#: Default histogram buckets for millisecond latencies (upper bounds).
DEFAULT_LATENCY_BUCKETS_MS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: Default buckets for byte sizes (TCP frames, KV pages).
DEFAULT_SIZE_BUCKETS = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
)

#: Default buckets for small counts (batch sizes, queue depths).
DEFAULT_COUNT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

_KINDS = ("counter", "gauge", "histogram")


def _label_key(pairs):
    """Canonical series key: ``"a=1,b=x"`` sorted by label name."""
    return ",".join("%s=%s" % (k, v) for k, v in sorted(pairs))


def parse_label_key(key):
    """Invert :func:`_label_key` into a ``{name: value}`` dict."""
    if not key:
        return {}
    return dict(pair.split("=", 1) for pair in key.split(","))


class _CounterCell:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0


class _HistCell:
    __slots__ = ("counts", "sum", "exemplars")

    def __init__(self, nbuckets):
        # counts[i] = observations in (buckets[i-1], buckets[i]];
        # counts[-1] is the +Inf overflow bucket.
        self.counts = [0] * (nbuckets + 1)
        self.sum = 0.0
        # bucket index -> (value, trace_id): the most recent traced
        # observation that landed in that bucket — an OpenMetrics
        # exemplar linking a slow bucket to a flight-recorder trace.
        self.exemplars = {}


class _Child:
    """One labelled series of a family; holds the per-thread cell hook."""

    __slots__ = ("_family", "_labels", "_local")

    def __init__(self, family, labels):
        self._family = family
        self._labels = labels  # tuple of (name, value) pairs
        self._local = threading.local()

    def _cell(self):
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = self._family._new_cell()
            self._local.cell = cell
            with self._family._lock:
                self._family._cells.append(
                    (threading.current_thread(), self._labels, cell))
        return cell


class Counter(_Child):
    """Monotonic total. ``inc`` is lock-free after the first call per
    thread (the cell belongs to this thread alone)."""

    __slots__ = ()

    def inc(self, amount=1.0):
        if not self._family.registry.enabled:
            return
        self._cell().value += amount


class Histogram(_Child):
    """Fixed-bucket distribution; ``observe`` bins one value.

    When an observation happens under an active trace context, its value
    and trace id are stamped as that bucket's *exemplar* (last traced
    observation wins) — so a scrape of a slow latency bucket carries the
    id of a concrete request that landed there, which the flight
    recorder can resolve to a full Chrome trace. Untraced observations
    (the overwhelming majority) pay one contextvar read extra.
    """

    __slots__ = ()

    def observe(self, value):
        family = self._family
        if not family.registry.enabled:
            return
        cell = self._cell()
        index = bisect_left(family.buckets, value)
        cell.counts[index] += 1
        cell.sum += value
        ctx = Tracer.current()
        if ctx is not None:
            cell.exemplars[index] = (value, ctx[0])


class Gauge:
    """Point-in-time value. ``set`` stores a float (a dict write, atomic
    under the GIL); ``set_function`` registers a zero-argument callable
    evaluated at scrape time instead (queue depths, cache bytes)."""

    __slots__ = ("_family", "_labels", "_key")

    def __init__(self, family, labels):
        self._family = family
        self._labels = labels
        self._key = labels

    def set(self, value):
        if self._family.registry.enabled:
            self._family._values[self._key] = float(value)

    def inc(self, amount=1.0):
        if self._family.registry.enabled:
            values = self._family._values
            values[self._key] = values.get(self._key, 0.0) + amount

    def dec(self, amount=1.0):
        self.inc(-amount)

    def set_function(self, fn):
        """Evaluate ``fn()`` at every scrape for this series. The last
        registration per label set wins (a recreated server simply
        replaces its predecessor's callback)."""
        self._family._functions[self._key] = fn


class _Family:
    """One named metric: kind, help text, label schema, children."""

    def __init__(self, registry, name, kind, help, labelnames, buckets=None):
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(float(b) for b in buckets) if buckets else None
        self._lock = registry._lock
        self._children = {}
        self._cells = []       # [(thread, label_pairs, cell)] counters/hists
        self._retired = {}     # label_pairs -> folded cell of dead threads
        self._values = {}      # gauges: label_pairs -> float
        self._functions = {}   # gauges: label_pairs -> callable

    def labels(self, **labelvalues):
        """The child series for one label-value assignment (cached)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                "metric %s takes labels %r, got %r"
                % (self.name, self.labelnames, tuple(labelvalues)))
        key = tuple((n, str(labelvalues[n])) for n in sorted(self.labelnames))
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    cls = {"counter": Counter, "gauge": Gauge,
                           "histogram": Histogram}[self.kind]
                    child = cls(self, key)
                    self._children[key] = child
        return child

    def _new_cell(self):
        if self.kind == "histogram":
            return _HistCell(len(self.buckets))
        return _CounterCell()

    def _fold(self, base, cell):
        if self.kind == "histogram":
            for i, c in enumerate(cell.counts):
                base.counts[i] += c
            base.sum += cell.sum
            base.exemplars.update(cell.exemplars)
        else:
            base.value += cell.value

    def _snapshot_series(self, constant):
        """Merge live + retired cells (pruning dead threads' cells into
        the retained base) into ``{series_key: value}``. Caller holds
        the registry lock."""
        live, dead = [], []
        for entry in self._cells:
            (dead, live)[entry[0].is_alive()].append(entry)
        for thread, labels, cell in dead:
            base = self._retired.get(labels)
            if base is None:
                base = self._retired[labels] = self._new_cell()
            self._fold(base, cell)
        self._cells[:] = live

        series = {}
        if self.kind == "gauge":
            merged = dict(self._values)
            for labels, fn in self._functions.items():
                try:
                    merged[labels] = float(fn())
                except Exception:
                    continue  # a dead callback must not break the scrape
            for labels, value in merged.items():
                series[_label_key(labels + constant)] = value
            return series

        totals = {}
        for labels, cell in self._retired.items():
            base = totals[labels] = self._new_cell()
            self._fold(base, cell)
        for _, labels, cell in self._cells:
            base = totals.get(labels)
            if base is None:
                base = totals[labels] = self._new_cell()
            self._fold(base, cell)
        for labels, cell in totals.items():
            key = _label_key(labels + constant)
            if self.kind == "histogram":
                cum, running = [], 0
                for c in cell.counts:
                    running += c
                    cum.append(running)
                series[key] = {"buckets": cum, "sum": cell.sum,
                               "count": running}
                if cell.exemplars:
                    series[key]["exemplars"] = {
                        str(i): {"value": v, "trace_id": t}
                        for i, (v, t) in cell.exemplars.items()}
            else:
                series[key] = cell.value
        return series


class MetricsRegistry:
    """A named collection of metric families with merge-friendly scrapes.

    ``counter``/``gauge``/``histogram`` declare (or re-fetch — the calls
    are idempotent per name) a family; ``family.labels(...)`` returns the
    writable child. ``enabled`` is the registry-wide kill switch: when
    False every write short-circuits, which is what the ≤5%-overhead
    benchmark gate measures. ``constant_labels`` are appended to every
    series at snapshot time — workers set ``{"shard": index}`` so their
    series stay distinct after the cluster-wide merge.
    """

    def __init__(self, constant_labels=None):
        self.enabled = True
        self.constant_labels = dict(constant_labels or {})
        self._families = {}
        self._lock = threading.RLock()

    # -- declaration ----------------------------------------------------
    def _family(self, name, kind, help, labels, buckets=None):
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind:
                    raise ValueError(
                        "metric %s already registered as a %s"
                        % (name, family.kind))
                return family
            family = _Family(self, name, kind, help, labels, buckets)
            self._families[name] = family
            return family

    def counter(self, name, help="", labels=()):
        return self._family(name, "counter", help, labels)

    def gauge(self, name, help="", labels=()):
        return self._family(name, "gauge", help, labels)

    def histogram(self, name, help="", labels=(),
                  buckets=DEFAULT_LATENCY_BUCKETS_MS):
        return self._family(name, "histogram", help, labels,
                            buckets=buckets)

    # -- reading --------------------------------------------------------
    def snapshot(self):
        """Plain-dict scrape of every family (JSON-clean, picklable).

        ``{name: {type, help, buckets?, series: {label_key: value}}}``
        where a histogram value is ``{buckets: [cumulative...], sum,
        count}`` (the last cumulative bucket is the +Inf count).
        """
        constant = tuple(sorted(self.constant_labels.items()))
        out = {}
        with self._lock:
            for name, family in self._families.items():
                entry = {"type": family.kind, "help": family.help,
                         "series": family._snapshot_series(constant)}
                if family.buckets is not None:
                    entry["buckets"] = list(family.buckets)
                out[name] = entry
        return out

    def clear(self):
        """Drop every family (tests; production registries only grow)."""
        with self._lock:
            self._families.clear()

    def __repr__(self):
        return "MetricsRegistry(%d families%s)" % (
            len(self._families), "" if self.enabled else ", disabled")


def merge_snapshots(snapshots):
    """Combine registry snapshots from many processes into one.

    Counters and histogram buckets/sums/counts add; gauges add too (the
    cluster-wide queue depth is the sum of per-shard depths — series
    that must stay distinct carry distinguishing constant labels, so
    they never share a key). The first snapshot to mention a family
    contributes its metadata.
    """
    out = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, entry in snap.items():
            have = out.get(name)
            if have is None:
                out[name] = {
                    "type": entry["type"], "help": entry["help"],
                    "series": {k: (dict(v) if isinstance(v, dict) else v)
                               for k, v in entry["series"].items()},
                }
                if "buckets" in entry:
                    out[name]["buckets"] = list(entry["buckets"])
                continue
            if have["type"] != entry["type"]:
                continue  # conflicting redeclaration: first wins
            for key, value in entry["series"].items():
                mine = have["series"].get(key)
                if mine is None:
                    have["series"][key] = (dict(value)
                                           if isinstance(value, dict)
                                           else value)
                elif isinstance(value, dict):
                    mine["sum"] += value["sum"]
                    mine["count"] += value["count"]
                    mine["buckets"] = [a + b for a, b in
                                       zip(mine["buckets"],
                                           value["buckets"])]
                    if "exemplars" in value:
                        mine.setdefault("exemplars", {}).update(
                            value["exemplars"])
                else:
                    have["series"][key] = mine + value
    return out


def _fmt_value(value):
    if value == int(value):
        return "%d" % int(value)
    return repr(float(value))


def _fmt_labels(key, extra=None):
    pairs = sorted(parse_label_key(key).items())
    if extra:
        pairs = sorted(pairs + list(extra))
    if not pairs:
        return ""
    return "{%s}" % ",".join('%s="%s"' % (k, v) for k, v in pairs)


def render_text(snapshot):
    """The Prometheus text exposition format for a snapshot.

    ``# HELP`` / ``# TYPE`` per family; histograms expand into
    ``_bucket{le=...}`` (cumulative, ``+Inf`` last), ``_sum`` and
    ``_count`` series, exactly the shape a Prometheus scraper ingests.
    """
    lines = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        if entry["help"]:
            lines.append("# HELP %s %s" % (name, entry["help"]))
        lines.append("# TYPE %s %s" % (name, entry["type"]))
        for key in sorted(entry["series"]):
            value = entry["series"][key]
            if entry["type"] != "histogram":
                lines.append("%s%s %s"
                             % (name, _fmt_labels(key), _fmt_value(value)))
                continue
            bounds = [_fmt_value(b) for b in entry["buckets"]] + ["+Inf"]
            exemplars = value.get("exemplars", {})
            for i, (bound, count) in enumerate(zip(bounds,
                                                   value["buckets"])):
                line = ("%s_bucket%s %d"
                        % (name, _fmt_labels(key, [("le", bound)]), count))
                ex = exemplars.get(str(i))
                if ex is not None:
                    # OpenMetrics exemplar: "# {labels} value" after the
                    # bucket sample — the trace id a scraper can resolve
                    # through the flight recorder.
                    line += ' # {trace_id="%s"} %s' % (
                        ex["trace_id"], _fmt_value(ex["value"]))
                lines.append(line)
            lines.append("%s_sum%s %s"
                         % (name, _fmt_labels(key), repr(value["sum"])))
            lines.append("%s_count%s %d"
                         % (name, _fmt_labels(key), value["count"]))
    return "\n".join(lines) + "\n"


#: Process-wide registry every instrumented layer writes into — one
#: singleton for the same reason the tracer has one: the batcher, the
#: router, the engine and the TCP front-end all record without any
#: registry object threaded through their APIs, and workers ship their
#: own process's snapshot over the RPC pipe to be merged cluster-wide.
METRICS = MetricsRegistry()
