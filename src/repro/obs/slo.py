"""SLO monitor: windowed time series + multi-window burn-rate alerting.

Turns the cumulative counters of a :class:`~repro.obs.metrics.MetricsRegistry`
into *windowed* good/total time series and evaluates declared
:class:`Objective` s against them — the quantitative health signal the
router, admission control and paging want (``op: slo`` / ``op: health``
on the cluster wire).

An objective comes in two kinds:

- ``latency`` — "``target`` of requests complete within ``threshold_ms``",
  read from a histogram family: *good* is the cumulative count at the
  smallest bucket bound ≥ the threshold (bucket-rounded compliance —
  declare thresholds on bucket bounds for exact semantics).
- ``errors`` — "``target`` of requests succeed", read from a total
  counter and a bad-events counter.

:meth:`SLOMonitor.tick` diffs the registry's cumulative values since the
last tick and files the delta into a per-epoch-second slot ring (bounded
by ``window_s``). Slots key on ``int(time.time())``, so rings ticked in
different processes (the front-end and every worker) merge by plain
per-second addition — exactly like telemetry snapshots.

Evaluation computes, per objective and per window (a short and a long
one), the bad fraction and its **burn rate** — bad_fraction divided by
the objective's error budget ``1 - target``. Burn 1.0 spends the budget
exactly at the sustainable pace; an alert fires only when *both*
windows burn hot (the standard multi-window rule: the long window
proves it is real, the short window proves it is still happening).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left

__all__ = ["Objective", "SLOMonitor", "default_objectives"]


class Objective:
    """One declared service-level objective over registry metrics."""

    def __init__(self, name, metric, threshold_ms=None, target=0.99,
                 kind="latency", bad_metric=None, description=""):
        if kind not in ("latency", "errors"):
            raise ValueError("objective kind must be latency or errors")
        if kind == "latency" and threshold_ms is None:
            raise ValueError("a latency objective needs threshold_ms")
        if kind == "errors" and bad_metric is None:
            raise ValueError("an errors objective needs bad_metric")
        if not 0.0 < float(target) < 1.0:
            raise ValueError("target must be in (0, 1)")
        self.name = name
        self.metric = metric
        self.threshold_ms = (None if threshold_ms is None
                             else float(threshold_ms))
        self.target = float(target)
        self.kind = kind
        self.bad_metric = bad_metric
        self.description = description

    def to_dict(self):
        """Wire/spawn-safe form (ships to workers as plain dicts)."""
        return {"name": self.name, "metric": self.metric,
                "threshold_ms": self.threshold_ms, "target": self.target,
                "kind": self.kind, "bad_metric": self.bad_metric,
                "description": self.description}

    @classmethod
    def from_dict(cls, d):
        if isinstance(d, Objective):
            return d
        return cls(d["name"], d["metric"],
                   threshold_ms=d.get("threshold_ms"),
                   target=d.get("target", 0.99),
                   kind=d.get("kind", "latency"),
                   bad_metric=d.get("bad_metric"),
                   description=d.get("description", ""))

    def cumulative(self, snapshot):
        """``(total, good)`` cumulative counts under this objective from
        one registry snapshot (0, 0 when the metric has no data yet)."""
        family = snapshot.get(self.metric)
        if family is None:
            return 0, 0
        if self.kind == "latency":
            buckets = family.get("buckets") or []
            idx = bisect_left(buckets, self.threshold_ms)
            total = good = 0
            for row in family["series"].values():
                total += row["count"]
                good += (row["count"] if idx >= len(buckets)
                         else row["buckets"][idx])
            return total, good
        total = sum(family["series"].values())
        bad_family = snapshot.get(self.bad_metric)
        bad = (sum(bad_family["series"].values())
               if bad_family is not None else 0)
        return total, max(0, total - bad)

    def __repr__(self):
        if self.kind == "latency":
            return "Objective(%s: p%g %s <= %gms)" % (
                self.name, self.target * 100.0, self.metric,
                self.threshold_ms)
        return "Objective(%s: %s error rate <= %g)" % (
            self.name, self.metric, 1.0 - self.target)


def default_objectives():
    """The stock serving objectives: p99 TTFT, p99 decode ITL, request
    error rate — matching the metrics the gen and TCP layers export."""
    return [
        Objective("ttft_p99", "repro_gen_ttft_ms", threshold_ms=500.0,
                  target=0.99,
                  description="99% of first tokens within 500 ms"),
        Objective("itl_p99", "repro_gen_itl_ms", threshold_ms=250.0,
                  target=0.99,
                  description="99% of decode ticks within 250 ms"),
        Objective("error_rate", "repro_tcp_requests_total", kind="errors",
                  bad_metric="repro_tcp_errors_total", target=0.999,
                  description="99.9% of wire requests succeed"),
    ]


class SLOMonitor:
    """Per-second good/total rings over a registry, one per objective.

    ``tick()`` is cheap (one registry snapshot + a dict diff) and safe to
    call on demand — the cluster ticks on every ``op: slo`` scrape; call
    :meth:`start` for a background 1 Hz cadence instead (dashboards).
    The constructor primes the cumulative baseline, so counts that
    predate the monitor are never attributed to its first slot.
    """

    def __init__(self, registry=None, objectives=None, window_s=120,
                 windows=(10, 60), alert_burn=2.0, clock=time.time):
        if registry is None:
            from .metrics import METRICS
            registry = METRICS
        self.registry = registry
        self.objectives = [Objective.from_dict(o)
                           for o in (objectives
                                     if objectives is not None
                                     else default_objectives())]
        self.window_s = int(window_s)
        self.windows = tuple(int(w) for w in windows)
        self.alert_burn = float(alert_burn)
        self.clock = clock
        self._lock = threading.Lock()
        self._slots = {o.name: {} for o in self.objectives}
        self._last = {}
        self._thread = None
        self._stop = threading.Event()
        self.tick(_record=False)  # prime the baseline

    # ------------------------------------------------------------------
    def tick(self, now=None, _record=True):
        """Fold the registry delta since the last tick into ``now``'s slot."""
        now = self.clock() if now is None else now
        sec = int(now)
        snap = self.registry.snapshot()
        with self._lock:
            for obj in self.objectives:
                total, good = obj.cumulative(snap)
                last_total, last_good = self._last.get(obj.name, (0, 0))
                self._last[obj.name] = (total, good)
                if not _record:
                    continue
                d_total = total - last_total
                d_good = good - last_good
                if d_total <= 0:
                    continue
                ring = self._slots[obj.name]
                slot = ring.setdefault(sec, [0, 0])
                slot[0] += d_total
                slot[1] += max(0, d_good)
                horizon = sec - self.window_s
                for old in [s for s in ring if s < horizon]:
                    del ring[old]

    def start(self, period_s=1.0):
        """Tick on a daemon thread every ``period_s`` until :meth:`stop`."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop():
            while not self._stop.wait(period_s):
                self.tick()

        self._thread = threading.Thread(target=loop, name="slo-monitor",
                                        daemon=True)
        self._thread.start()

    def stop(self):
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(5.0)
        self._thread = None

    # ------------------------------------------------------------------
    def snapshot(self):
        """JSON-clean state: objectives + per-second ``[total, good]``
        slots (string seconds, for the wire)."""
        with self._lock:
            return {
                "window_s": self.window_s,
                "windows": list(self.windows),
                "alert_burn": self.alert_burn,
                "objectives": [o.to_dict() for o in self.objectives],
                "slots": {name: {str(sec): list(slot)
                                 for sec, slot in ring.items()}
                          for name, ring in self._slots.items()},
            }

    @staticmethod
    def merge(snapshots):
        """Sum per-second slots across process snapshots (front-end +
        every worker); metadata comes from the first non-empty one."""
        snapshots = [s for s in snapshots if s and s.get("objectives")]
        if not snapshots:
            return {"window_s": 0, "windows": [], "alert_burn": 0.0,
                    "objectives": [], "slots": {}}
        out = {"window_s": snapshots[0]["window_s"],
               "windows": list(snapshots[0]["windows"]),
               "alert_burn": snapshots[0]["alert_burn"],
               "objectives": list(snapshots[0]["objectives"]),
               "slots": {}}
        names = {o["name"] for o in out["objectives"]}
        for snap in snapshots:
            for obj in snap["objectives"]:
                if obj["name"] not in names:
                    out["objectives"].append(obj)
                    names.add(obj["name"])
            for name, ring in snap["slots"].items():
                mine = out["slots"].setdefault(name, {})
                for sec, (total, good) in ring.items():
                    slot = mine.setdefault(sec, [0, 0])
                    slot[0] += total
                    slot[1] += good
        return out

    @staticmethod
    def evaluate(snapshot, now=None):
        """Evaluate a (possibly merged) snapshot into per-objective rows.

        Each row carries, per window, the observed total, bad count,
        compliance and burn rate (bad_fraction / (1 - target)); the
        ``alerting`` flag fires when every window burns at or above
        ``alert_burn`` with traffic in it. An empty window is compliant
        (burn 0) — no data is not an outage.
        """
        now = time.time() if now is None else now
        rows = []
        for obj in snapshot.get("objectives", ()):
            ring = snapshot.get("slots", {}).get(obj["name"], {})
            row = {"name": obj["name"], "kind": obj["kind"],
                   "metric": obj["metric"],
                   "threshold_ms": obj.get("threshold_ms"),
                   "target": obj["target"],
                   "description": obj.get("description", ""),
                   "windows": {}}
            budget = 1.0 - obj["target"]
            hot = []
            for window in snapshot.get("windows", ()):
                horizon = int(now) - int(window)
                total = good = 0
                for sec, (t, g) in ring.items():
                    if int(sec) > horizon:
                        total += t
                        good += g
                bad = max(0, total - good)
                bad_fraction = (bad / total) if total else 0.0
                burn = bad_fraction / budget if budget > 0 else 0.0
                row["windows"][str(int(window))] = {
                    "total": total, "bad": bad,
                    "compliance": (good / total) if total else 1.0,
                    "burn_rate": burn,
                }
                hot.append(total > 0
                           and burn >= snapshot.get("alert_burn", 0.0))
            row["alerting"] = bool(hot) and all(hot)
            rows.append(row)
        return rows

    def evaluated(self, now=None):
        """Convenience: tick, then evaluate this monitor's own ring."""
        self.tick(now)
        return self.evaluate(self.snapshot(), now)

    def __repr__(self):
        return "SLOMonitor(%d objectives, window=%ds)" % (
            len(self.objectives), self.window_s)
