"""Continuous wall-clock sampling profiler (the "always-on" layer).

PR 6's :class:`~repro.obs.profiler.StepProfiler` is opt-in and measures
*named* steps; the metrics plane aggregates but cannot attribute time to
code. This module closes the gap with a classic wall-clock sampler: a
daemon thread wakes ~100 times a second (jittered so it never locks step
with periodic work), grabs ``sys._current_frames()``, and folds every
thread's stack into a bounded ``{folded_stack: [samples, ms]}``
aggregate. Because it samples wall clock rather than CPU, lock waits and
``condition.wait`` time show up too — which is exactly what a serving
system wants to see.

Three design points worth knowing:

- **Tagging.** ``contextvars`` are per-thread, so the sampler thread
  cannot read the *sampled* thread's span context. Instead instrumented
  sites (the decode tick, prefill, the router) wrap themselves in
  :func:`tagged`, which maintains a plain ``{thread_id: tag}`` dict the
  sampler reads directly. The tag becomes the root frame of the folded
  stack, so decode-tick vs prefill vs router time separates for free.
- **Bounding.** Aggregates are capped at ``max_stacks`` distinct stacks;
  when a new stack would exceed the cap, the smallest existing entry is
  folded into a per-tag ``(other)`` bucket. Totals are exact; only
  attribution of the long tail coarsens.
- **Windows and diffs.** ``snapshot(reset=True)`` gives windowed
  profiles; :func:`diff_profiles` subtracts two cumulative snapshots and
  names the stacks that *grew* — regression attribution for the CI gate.

Snapshots are JSON-clean and merge across processes with
:func:`merge_profiles` (workers label theirs ``shard0``, ``shard1``, …;
the front-end uses ``frontend``). :func:`render_collapsed` emits the
standard collapsed-stack text (``a;b;c 42`` per line — flamegraph.pl /
speedscope input) and :func:`to_pprof` a pprof-style JSON document with
a string table and location-id encoded samples.
"""

from __future__ import annotations

import random
import sys
import threading
import time

from .metrics import METRICS

__all__ = [
    "WallClockSampler",
    "SAMPLER",
    "tagged",
    "current_tag",
    "configure_sampler",
    "merge_profiles",
    "diff_profiles",
    "render_collapsed",
    "to_pprof",
]

#: thread id -> active tag, maintained by :func:`tagged` and read by the
#: sampler thread. A plain dict write per span entry/exit (~0.1 us) —
#: cheap enough to leave on even when no sampler runs.
_TAGS = {}

#: Folded-stack label for the eviction bucket (exempt from the cap).
OTHER = "(other)"


class tagged:
    """Context manager labelling the *current thread* for the sampler.

    Nestable; the innermost tag wins and the previous one is restored on
    exit. Used at the hot spots the profile must separate::

        with tagged("decode"):
            core.step()
    """

    __slots__ = ("tag", "_tid", "_prev")

    def __init__(self, tag):
        self.tag = tag

    def __enter__(self):
        tid = self._tid = threading.get_ident()
        self._prev = _TAGS.get(tid)
        _TAGS[tid] = self.tag
        return self

    def __exit__(self, *exc):
        if self._prev is None:
            _TAGS.pop(self._tid, None)
        else:
            _TAGS[self._tid] = self._prev
        return False


def current_tag(tid=None):
    """The active tag for ``tid`` (default: the calling thread)."""
    return _TAGS.get(tid if tid is not None else threading.get_ident())


def _frame_label(code):
    """One collapsed-stack frame: ``func (file)``.

    The file keeps only its basename — except pseudo-filenames like the
    recorded-decode closure's ``<recorded:gpt_nano@decode>``, which stay
    verbatim (they *are* the interesting attribution). Line numbers are
    deliberately dropped: leaf lines churn every sample and would
    explode the aggregate's cardinality.
    """
    filename = code.co_filename
    if not filename.startswith("<"):
        filename = filename.rsplit("/", 1)[-1]
    return "%s (%s)" % (code.co_name, filename)


def _fold(frame, max_depth):
    """Root-first tuple of frame labels for one thread's stack."""
    rev = []
    while frame is not None and len(rev) < max_depth:
        rev.append(_frame_label(frame.f_code))
        frame = frame.f_back
    rev.reverse()
    return tuple(rev)


class WallClockSampler:
    """Samples every thread's stack at ``rate_hz`` into bounded folds.

    ``frames_fn`` and ``clock`` are injectable so tests can drive
    :meth:`sample_once` with fabricated frames and a fake clock —
    nothing in the folding pipeline needs a real thread. The ``label``
    identifies this process in merged cluster profiles.
    """

    def __init__(self, rate_hz=100.0, max_stacks=512, max_depth=48,
                 label="proc", frames_fn=None, clock=None, registry=None):
        self.label = label
        self.rate_hz = float(rate_hz)
        self.max_stacks = int(max_stacks)
        self.max_depth = int(max_depth)
        self._frames_fn = frames_fn or sys._current_frames
        self._clock = clock or time.monotonic
        self._registry = registry
        self._lock = threading.Lock()
        self._stacks = {}        # (tag, fold) -> [samples, ms]
        self._tag_samples = {}   # tag -> samples
        self._total_samples = 0
        self._total_ms = 0.0
        self._evicted = 0
        self._last = None        # clock() at the previous sample
        self._thread = None
        self._stop = threading.Event()
        self._own_tid = None

    # -- lifecycle ------------------------------------------------------
    @property
    def enabled(self):
        return self._thread is not None and self._thread.is_alive()

    def start(self, rate_hz=None):
        """Start (or retune) the daemon sampling thread. Idempotent."""
        if rate_hz is not None:
            self.rate_hz = float(rate_hz)
        if self.enabled:
            return self
        self._stop.clear()
        self._last = None
        self._thread = threading.Thread(
            target=self._run, name="contprof-sampler", daemon=True)
        self._thread.start()
        self._register_metrics()
        return self

    def stop(self, timeout=2.0):
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout)
        self._thread = None

    def _run(self):
        self._own_tid = threading.get_ident()
        while not self._stop.is_set():
            self.sample_once()
            period = 1.0 / max(self.rate_hz, 1e-3)
            # Jittered sleep (0.5x..1.5x the period, mean = period) so
            # sampling never phase-locks with periodic serving work.
            self._stop.wait(period * (0.5 + random.random()))

    def _register_metrics(self):
        registry = self._registry or METRICS
        gauges = registry.gauge(
            "repro_contprof_samples_total",
            "Wall-clock profiler samples taken (thread-stacks folded).")
        gauges.labels().set_function(lambda: self._total_samples)
        registry.gauge(
            "repro_contprof_stacks",
            "Distinct folded stacks currently held by the sampler.",
        ).labels().set_function(lambda: len(self._stacks))
        registry.gauge(
            "repro_contprof_rate_hz",
            "Configured wall-clock sampling rate (0 when stopped).",
        ).labels().set_function(
            lambda: self.rate_hz if self.enabled else 0.0)

    # -- sampling -------------------------------------------------------
    def sample_once(self, frames=None, now=None):
        """Take one sample: fold every thread's current stack.

        Each observed thread is credited the wall time elapsed since the
        previous sample (clamped to 10 sampling periods, so a paused
        process does not invent a giant attribution on resume). Split
        out from the thread loop so tests can drive it deterministically
        with fake frames and a fake clock.
        """
        if frames is None:
            frames = self._frames_fn()
        if now is None:
            now = self._clock()
        period_ms = 1000.0 / max(self.rate_hz, 1e-3)
        if self._last is None:
            dt_ms = period_ms
        else:
            dt_ms = min((now - self._last) * 1000.0, 10.0 * period_ms)
            if dt_ms < 0.0:
                dt_ms = 0.0
        self._last = now
        own = self._own_tid
        with self._lock:
            for tid, frame in frames.items():
                if tid == own:
                    continue
                tag = _TAGS.get(tid, "")
                fold = _fold(frame, self.max_depth)
                if not fold:
                    continue
                self._record(tag, fold, 1, dt_ms)
                self._tag_samples[tag] = self._tag_samples.get(tag, 0) + 1
                self._total_samples += 1
                self._total_ms += dt_ms

    def _record(self, tag, fold, samples, ms):
        """Add to one aggregate entry, evicting the smallest entry into
        the per-tag ``(other)`` bucket when the cap would be exceeded.
        Caller holds the lock."""
        key = (tag, fold)
        entry = self._stacks.get(key)
        if entry is not None:
            entry[0] += samples
            entry[1] += ms
            return
        # The cap counts attributed stacks only — the per-tag ``(other)``
        # buckets are exempt, or folding into them would itself evict.
        if fold != (OTHER,) and len(self._stacks) >= self.max_stacks:
            while True:
                victims = [k for k in self._stacks if k[1] != (OTHER,)]
                if len(victims) < self.max_stacks:
                    break
                victim = min(victims, key=lambda k: self._stacks[k][0])
                v_samples, v_ms = self._stacks.pop(victim)
                self._evicted += 1
                self._record(victim[0], (OTHER,), v_samples, v_ms)
        self._stacks[key] = [samples, ms]

    # -- reading --------------------------------------------------------
    def snapshot(self, reset=False):
        """JSON-clean profile document.

        ``stacks`` keys are the collapsed form ``tag;frame;frame`` (tag
        omitted when empty); values are ``{"samples", "ms"}``. With
        ``reset=True`` the aggregates are cleared after reading, turning
        consecutive calls into windowed profiles.
        """
        with self._lock:
            stacks = {}
            for (tag, fold), (samples, ms) in self._stacks.items():
                parts = (tag,) + fold if tag else fold
                stacks[";".join(parts)] = {
                    "samples": samples, "ms": round(ms, 3)}
            out = {
                "label": self.label,
                "rate_hz": self.rate_hz,
                "samples": self._total_samples,
                "duration_ms": round(self._total_ms, 3),
                "evicted": self._evicted,
                "tags": {tag or "(untagged)": n
                         for tag, n in self._tag_samples.items()},
                "stacks": stacks,
            }
            if reset:
                self._stacks.clear()
                self._tag_samples.clear()
                self._total_samples = 0
                self._total_ms = 0.0
                self._evicted = 0
        return out


def configure_sampler(sampler, enabled=None, rate_hz=None):
    """Apply an (enabled, rate_hz) reconfiguration to one sampler.

    The single semantics both the cluster front-end and every worker
    follow for ``op: obs`` sampler directives, so a knob can never be
    half-applied across the fleet:

    - ``rate_hz`` is stored first, *unconditionally* — a rate sent while
      the sampler is stopped is remembered and takes effect on the next
      start (the sampler thread reads ``rate_hz`` every tick, so a
      running sampler retunes in place with no restart);
    - ``enabled=True`` starts, ``enabled=False`` stops, ``None`` leaves
      the run state alone.

    Returns the sampler's resulting ``enabled`` state.
    """
    if rate_hz is not None:
        sampler.rate_hz = float(rate_hz)
    if enabled is True:
        sampler.start()
    elif enabled is False:
        sampler.stop()
    return sampler.enabled


def merge_profiles(snapshots):
    """Combine per-process profiles into one cluster-wide document.

    Stacks merge by folded key (so a hotspot shared by every worker sums
    cluster-wide); the per-process totals survive under ``shards`` keyed
    by each sampler's label, which is how the shard-labelled origin of
    the data stays visible after the merge.
    """
    out = {"samples": 0, "duration_ms": 0.0, "evicted": 0,
           "stacks": {}, "tags": {}, "shards": {}}
    for snap in snapshots:
        if not snap:
            continue
        out["samples"] += snap.get("samples", 0)
        out["duration_ms"] = round(
            out["duration_ms"] + snap.get("duration_ms", 0.0), 3)
        out["evicted"] += snap.get("evicted", 0)
        out["shards"][snap.get("label", "?")] = {
            "samples": snap.get("samples", 0),
            "duration_ms": snap.get("duration_ms", 0.0),
            "rate_hz": snap.get("rate_hz", 0.0),
        }
        for tag, n in snap.get("tags", {}).items():
            out["tags"][tag] = out["tags"].get(tag, 0) + n
        for stack, row in snap.get("stacks", {}).items():
            have = out["stacks"].get(stack)
            if have is None:
                out["stacks"][stack] = dict(row)
            else:
                have["samples"] += row["samples"]
                have["ms"] = round(have["ms"] + row["ms"], 3)
    return out


def diff_profiles(before, after, top=20):
    """Differential profile: what *grew* between two cumulative reads.

    Returns ``{"stacks": {...}, "grown": [stack, ...]}`` where stacks
    holds positive sample/ms deltas and ``grown`` names the ``top``
    stacks by ms growth — the regression-attribution primitive: profile
    before and after a change, diff, read the first few names.
    """
    old = before.get("stacks", {})
    stacks = {}
    for stack, row in after.get("stacks", {}).items():
        prev = old.get(stack, {"samples": 0, "ms": 0.0})
        d_samples = row["samples"] - prev["samples"]
        d_ms = round(row["ms"] - prev["ms"], 3)
        if d_samples > 0 or d_ms > 0:
            stacks[stack] = {"samples": max(d_samples, 0),
                             "ms": max(d_ms, 0.0)}
    grown = sorted(stacks, key=lambda s: stacks[s]["ms"], reverse=True)
    return {
        "samples": max(after.get("samples", 0) - before.get("samples", 0),
                       0),
        "duration_ms": round(max(after.get("duration_ms", 0.0)
                                 - before.get("duration_ms", 0.0), 0.0), 3),
        "stacks": stacks,
        "grown": grown[:top],
    }


def render_collapsed(profile, weight="samples"):
    """Collapsed-stack text: one ``stack weight`` line, heaviest first.

    This is the format flamegraph.pl and speedscope ingest directly;
    ``weight`` selects samples (default) or attributed milliseconds.
    """
    stacks = profile.get("stacks", {})
    lines = []
    for stack in sorted(stacks, key=lambda s: stacks[s][weight],
                        reverse=True):
        value = stacks[stack][weight]
        lines.append("%s %d" % (stack, round(value)))
    return "\n".join(lines) + ("\n" if lines else "")


def to_pprof(profile):
    """pprof-style JSON: string table + location-id encoded samples.

    Mirrors profile.proto's shape (sample types, a shared string table,
    samples as location-id lists with one value per sample type) without
    the protobuf dependency — small, diffable, and trivially convertible.
    """
    strings = [""]
    index = {"": 0}

    def intern(s):
        i = index.get(s)
        if i is None:
            i = index[s] = len(strings)
            strings.append(s)
        return i

    samples = []
    for stack, row in profile.get("stacks", {}).items():
        frames = stack.split(";")
        samples.append({
            # pprof orders locations leaf-first.
            "location_ids": [intern(f) for f in reversed(frames)],
            "values": [row["samples"], row["ms"]],
        })
    return {
        "sample_types": [{"type": "samples", "unit": "count"},
                         {"type": "wall", "unit": "milliseconds"}],
        "string_table": strings,
        "samples": samples,
        "total_samples": profile.get("samples", 0),
        "duration_ms": profile.get("duration_ms", 0.0),
    }


#: Per-process singleton, mirroring ``TRACE`` and ``METRICS``: every
#: layer tags through the module-level :func:`tagged` and the cluster
#: wiring starts/labels this sampler per process (``frontend`` on the
#: server, ``shard<i>`` in each worker).
SAMPLER = WallClockSampler()
