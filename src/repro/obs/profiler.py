"""Per-step engine profiling: measured milliseconds next to predicted cycles.

:class:`StepProfiler` is the opt-in timing hook of
:func:`repro.serving.engine.execute_plan`: when a profiler is passed (or
installed on a server), every kernel step's wall time is accumulated under
``(plan name, step kind, module name)``. Aggregates are plain dicts —
picklable, mergeable across cluster workers, JSON-exportable — and
:meth:`StepProfiler.versus_predicted` lines the measured per-module
milliseconds up against :meth:`CyclePredictor.breakdown`'s predicted
cycles, turning the paper's Eq. (5) predicted-vs-measured comparison into
a per-layer table.

The decode-step rows (``kv_append``, ``cached_attention``, sampling glue)
are the numbers that quantify per-tick Python dispatch overhead — the
baseline the recorded-decode-loop work on the ROADMAP aims to remove.
"""

from __future__ import annotations

import threading
import time

__all__ = ["StepProfiler", "step_label"]


def step_label(plan, step):
    """Stable aggregation key for one step: ``kind`` or ``kind:module``.

    LUT steps carry their converted module's qualified name (via the
    plan's layer table), so profiles read like the predictor's breakdown;
    glue steps aggregate by kind alone.
    """
    if step.kind == "lut_gemm":
        index = step.params.get("layer")
        if index is not None and index < len(plan.layers):
            name = plan.layers[index].get("name")
            if name:
                return "lut_gemm:%s" % name
    if step.kind == "composite":
        # Recorded megasteps profile under their recording label; under a
        # profiler the engine runs their *timed* compiled closure, whose
        # generated source files each inner step under the per-kernel
        # labels above — so those rows still appear alongside this one.
        return step.params.get("label") or "composite"
    return step.kind


class StepProfiler:
    """Threadsafe accumulator of per-step wall time.

    ``record`` is the hot call: one monotonic delta filed under a string
    key. The executor computes the label once per step per call; batcher
    threads share one profiler, so the increment is lock-guarded (the
    lock is uncontended relative to kernel runtimes).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._rows = {}  # (plan, label) -> [count, total_s, min_s, max_s]
        self.clock = time.perf_counter

    def record(self, plan_name, label, seconds):
        key = (plan_name, label)
        with self._lock:
            row = self._rows.get(key)
            if row is None:
                self._rows[key] = [1, seconds, seconds, seconds]
            else:
                row[0] += 1
                row[1] += seconds
                if seconds < row[2]:
                    row[2] = seconds
                if seconds > row[3]:
                    row[3] = seconds

    def clear(self):
        with self._lock:
            self._rows.clear()

    def __len__(self):
        with self._lock:
            return len(self._rows)

    # ------------------------------------------------------------------
    def snapshot(self):
        """``{plan: {label: {calls, total_ms, mean_ms, min_ms, max_ms}}}``."""
        with self._lock:
            rows = {key: list(row) for key, row in self._rows.items()}
        out = {}
        for (plan, label), (count, total, lo, hi) in rows.items():
            out.setdefault(plan, {})[label] = {
                "calls": count,
                "total_ms": total * 1e3,
                "mean_ms": total / count * 1e3,
                "min_ms": lo * 1e3,
                "max_ms": hi * 1e3,
            }
        return out

    @staticmethod
    def merge(snapshots):
        """Combine snapshots from many profilers (cluster-wide view).

        Calls and totals add; min/max extremise; means recompute from the
        merged totals.
        """
        out = {}
        for snap in snapshots:
            for plan, labels in (snap or {}).items():
                into = out.setdefault(plan, {})
                for label, row in labels.items():
                    have = into.get(label)
                    if have is None:
                        into[label] = dict(row)
                        continue
                    have["calls"] += row["calls"]
                    have["total_ms"] += row["total_ms"]
                    have["min_ms"] = min(have["min_ms"], row["min_ms"])
                    have["max_ms"] = max(have["max_ms"], row["max_ms"])
                    have["mean_ms"] = have["total_ms"] / have["calls"]
        return out

    # ------------------------------------------------------------------
    def versus_predicted(self, plan, predictor, batch_size):
        """Measured-vs-predicted rows for one plan's LUT modules.

        Returns ``[{module, measured_mean_ms, calls, predicted_cycles,
        predicted_ms}, ...]`` — the serving-time form of the paper's
        predicted/measured comparison, per layer. Modules the profiler
        has not seen yet are omitted.
        """
        breakdown = predictor.breakdown(batch_size)
        freq = predictor.sim_config.frequency_hz
        measured = self.snapshot().get(plan.model_name, {})
        rows = []
        for module, cycles in breakdown.items():
            row = measured.get("lut_gemm:%s" % module)
            if row is None:
                continue
            rows.append({
                "module": module,
                "calls": row["calls"],
                "measured_mean_ms": row["mean_ms"],
                "predicted_cycles": cycles,
                "predicted_ms": cycles / freq * 1e3,
            })
        return rows

    def __repr__(self):
        return "StepProfiler(%d rows)" % len(self)
