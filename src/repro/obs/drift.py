"""Cost-model drift detection: does the predictor still track reality?

The router prices every dispatch on :class:`CyclePredictor` cycles, yet
nothing validated that model against measurements after deploy. This
module continuously joins the :class:`~repro.obs.profiler.StepProfiler`'s
measured per-module milliseconds (the recorded decode path emits real
per-kernel rows through its timed closures) against
``CyclePredictor.breakdown()``'s predicted cycles, per ``(model, layer)``:

- every ingest diffs the profiler's *cumulative* snapshot against the
  last-seen ``(calls, total_ms)`` per row, so re-polling never double
  counts and a cleared profiler just resyncs;
- each fresh delta updates an **EWMA ms-per-predicted-cycle** for that
  layer — the calibration factor that turns the simulator's cycles into
  expected wall milliseconds *on this shard*;
- the per-model **calibration** is the cycle-weighted mean of its layer
  EWMAs, and each layer's **drift** is its EWMA over that calibration: a
  layer drifting past ``band`` (or under ``1/band``) is costing
  disproportionately more (or less) than the cost model believes, and is
  flagged.

Snapshots are JSON-clean, labelled per shard, and merge cluster-wide
with :meth:`DriftDetector.merge` (calls-weighted layer EWMAs, drift
recomputed against the merged calibration). The per-model calibrations
are what :meth:`repro.cluster.router.LeastWorkRouter.set_calibration`
consumes to optionally price dispatches with drift-corrected cycles.
"""

from __future__ import annotations

import threading
import time

__all__ = ["DriftDetector", "RepricingPolicy"]


class DriftDetector:
    """Joins measured step milliseconds against predicted cycles.

    ``band`` is the symmetric drift tolerance (2.0 = a layer may cost up
    to 2x / down to 0.5x its calibrated share before alerting);
    ``alpha`` the EWMA smoothing weight of each new per-call sample;
    ``min_calls`` the evidence floor below which a layer never alerts.
    ``label`` identifies this process (``shard0``…) in merged snapshots.
    """

    def __init__(self, band=2.0, alpha=0.2, min_calls=3, label="",
                 registry=None):
        self.band = float(band)
        self.alpha = float(alpha)
        self.min_calls = int(min_calls)
        self.label = label
        self._registry = registry
        self._lock = threading.Lock()
        self._expected = {}   # plan -> {step label: predicted cycles}
        self._freq = {}       # plan -> simulated frequency_hz
        self._seen = {}       # (plan, label) -> (calls, total_ms)
        self._ewma = {}       # (plan, label) -> ms per predicted cycle
        self._calls = {}      # (plan, label) -> calls folded into the EWMA

    # -- registration ---------------------------------------------------
    def watch(self, plan_name, predictor, batch_size=1):
        """Register a served plan's predicted per-layer breakdown.

        The breakdown is computed once (the simulator memoises nothing
        per-layer, so this is the expensive call) at the batch size the
        drift comparison should assume — 1 for decode ticks, the bucket
        size for prefill plans.
        """
        breakdown = predictor.breakdown(batch_size)
        with self._lock:
            self._expected[plan_name] = {
                "lut_gemm:%s" % module: float(cycles)
                for module, cycles in breakdown.items() if cycles}
            self._freq[plan_name] = float(predictor.sim_config.frequency_hz)

    def watched(self):
        with self._lock:
            return sorted(self._expected)

    # -- ingest ---------------------------------------------------------
    def ingest(self, profiler_snapshot):
        """Fold one cumulative profiler snapshot into the EWMAs.

        Returns the number of ``(plan, layer)`` rows that contributed a
        fresh delta. Rows for unwatched plans or glue steps (no predicted
        cycles) are ignored; a snapshot whose counters went *backwards*
        (profiler cleared between polls) resyncs silently.
        """
        fresh = 0
        with self._lock:
            for plan, labels in (profiler_snapshot or {}).items():
                expected = self._expected.get(plan)
                if not expected:
                    continue
                for label, row in labels.items():
                    cycles = expected.get(label)
                    if not cycles:
                        continue
                    key = (plan, label)
                    calls, total_ms = row["calls"], row["total_ms"]
                    seen_calls, seen_ms = self._seen.get(key, (0, 0.0))
                    if calls < seen_calls or total_ms < seen_ms:
                        self._seen[key] = (calls, total_ms)
                        continue
                    d_calls = calls - seen_calls
                    d_ms = total_ms - seen_ms
                    if d_calls <= 0:
                        continue
                    self._seen[key] = (calls, total_ms)
                    sample = (d_ms / d_calls) / cycles
                    prev = self._ewma.get(key)
                    self._ewma[key] = (
                        sample if prev is None
                        else self.alpha * sample + (1 - self.alpha) * prev)
                    self._calls[key] = self._calls.get(key, 0) + d_calls
                    fresh += 1
        if fresh:
            self._export_gauges()
        return fresh

    def _export_gauges(self):
        registry = self._registry
        if registry is None:
            return
        snap = self.snapshot()
        ratio = registry.gauge(
            "repro_drift_ratio",
            "Per-layer measured-over-calibrated cost drift "
            "(1.0 = tracking the cost model exactly).",
            labels=("model", "layer"))
        for model, entry in snap["models"].items():
            for layer, row in entry["layers"].items():
                ratio.labels(model=model, layer=layer).set(row["drift"])
        registry.gauge(
            "repro_drift_alerting",
            "Layers currently drifted outside the tolerance band.",
        ).labels().set(sum(len(entry["alerts"])
                           for entry in snap["models"].values()))

    # -- reading --------------------------------------------------------
    def snapshot(self):
        """JSON-clean per-model calibration + per-layer drift document.

        ``calibration_ms_per_cycle`` turns predicted cycles into expected
        wall ms on this shard; ``predicted_ratio`` is measured time over
        the simulator's idealised time (host-vs-accelerator slowdown);
        per-layer ``drift`` is the layer's EWMA over the model
        calibration, alerting outside ``[1/band, band]``.
        """
        with self._lock:
            expected = {plan: dict(rows)
                        for plan, rows in self._expected.items()}
            freq = dict(self._freq)
            ewma = dict(self._ewma)
            calls = dict(self._calls)
        models = {}
        for plan, rows in expected.items():
            layers = {}
            weight = 0.0
            weighted = 0.0
            for label, cycles in rows.items():
                e = ewma.get((plan, label))
                if e is None:
                    continue
                layers[label] = {
                    "ms_per_cycle": e,
                    "predicted_cycles": cycles,
                    "calls": calls.get((plan, label), 0),
                }
                weight += cycles
                weighted += e * cycles
            calibration = (weighted / weight) if weight else 0.0
            alerts = []
            for label, row in layers.items():
                drift = (row["ms_per_cycle"] / calibration
                         if calibration else 1.0)
                row["drift"] = drift
                row["alert"] = bool(
                    row["calls"] >= self.min_calls
                    and (drift > self.band or drift < 1.0 / self.band))
                if row["alert"]:
                    alerts.append(label)
            entry = {
                "calibration_ms_per_cycle": calibration,
                "layers": layers,
                "alerts": sorted(alerts),
            }
            hz = freq.get(plan)
            if hz and calibration:
                # measured ms per cycle over the simulator's ms per cycle
                entry["predicted_ratio"] = calibration * hz / 1e3
            models[plan] = entry
        return {
            "label": self.label,
            "band": self.band,
            "models": models,
            "alerting": any(m["alerts"] for m in models.values()),
        }

    def calibrations(self):
        """``{plan: calibration_ms_per_cycle}`` for router pricing."""
        snap = self.snapshot()
        return {plan: entry["calibration_ms_per_cycle"]
                for plan, entry in snap["models"].items()
                if entry["calibration_ms_per_cycle"]}

    # -- cluster merge --------------------------------------------------
    @staticmethod
    def merge(snapshots):
        """Combine per-shard snapshots into one cluster-wide view.

        Layer EWMAs merge calls-weighted; calibration and drift are then
        recomputed against the merged layers, and alerts re-evaluated at
        the *first* snapshot's band. Per-shard calibrations survive under
        ``shards`` so a single slow shard stays visible after the merge.
        """
        band = None
        merged = {}   # plan -> {layer: [sum(e*calls), calls, cycles]}
        shards = {}
        for snap in snapshots:
            if not snap:
                continue
            if band is None:
                band = snap.get("band", 2.0)
            shard_cal = {}
            for plan, entry in snap.get("models", {}).items():
                if entry.get("calibration_ms_per_cycle"):
                    shard_cal[plan] = entry["calibration_ms_per_cycle"]
                into = merged.setdefault(plan, {})
                for label, row in entry.get("layers", {}).items():
                    have = into.setdefault(label, [0.0, 0, 0.0])
                    weight = max(row.get("calls", 0), 1)
                    have[0] += row["ms_per_cycle"] * weight
                    have[1] += weight
                    have[2] = row.get("predicted_cycles", have[2])
            if shard_cal or snap.get("label"):
                shards[snap.get("label") or "?"] = shard_cal
        band = band if band is not None else 2.0
        models = {}
        for plan, rows in merged.items():
            layers = {}
            weight = 0.0
            weighted = 0.0
            for label, (e_sum, n, cycles) in rows.items():
                e = e_sum / n
                layers[label] = {"ms_per_cycle": e, "calls": n,
                                 "predicted_cycles": cycles}
                weight += cycles
                weighted += e * cycles
            calibration = (weighted / weight) if weight else 0.0
            alerts = []
            for label, row in layers.items():
                drift = (row["ms_per_cycle"] / calibration
                         if calibration else 1.0)
                row["drift"] = drift
                row["alert"] = bool(drift > band or drift < 1.0 / band)
                if row["alert"]:
                    alerts.append(label)
            models[plan] = {
                "calibration_ms_per_cycle": calibration,
                "layers": layers,
                "alerts": sorted(alerts),
            }
        return {
            "band": band,
            "models": models,
            "shards": shards,
            "alerting": any(m["alerts"] for m in models.values()),
        }

    def __repr__(self):
        with self._lock:
            return "DriftDetector(%d plans, %d layers tracked)" % (
                len(self._expected), len(self._ewma))


class RepricingPolicy:
    """Hysteresis gate between raw drift factors and installed pricing.

    The repricing loop runs on a cadence against noisy, EWMA-smoothed
    calibrations; without a deadband every tick would reinstall slightly
    different factors (pricing flap), and a single transient empty
    ``drift()`` fan-out (every shard raced on ShardCrashed) would throw
    away a perfectly good calibration. :meth:`decide` is the whole
    contract: feed it each cycle's raw ``{key: factor}`` and it answers
    whether to (re)install, remembering what is currently active.

    - a non-empty report installs only when some key's factor moved more
      than ``threshold`` (fractionally) against the active set, or a key
      appeared/disappeared — otherwise the active factors stand;
    - an empty report *keeps the last-good factors*; only after
      ``empty_clears`` consecutive empty reports does the policy clear
      to ``{}`` (raw predicted cycles) — a real calibration loss, not a
      race.

    ``clock`` is injectable for tests; ``last_repriced`` is the clock
    reading of the most recent install (``None`` before the first).
    """

    def __init__(self, threshold=0.10, empty_clears=3, clock=None):
        if threshold < 0.0:
            raise ValueError("threshold must be >= 0")
        if empty_clears < 1:
            raise ValueError("empty_clears must be >= 1")
        self.threshold = float(threshold)
        self.empty_clears = int(empty_clears)
        self._clock = clock or time.time
        self._lock = threading.Lock()
        self.active = {}
        self.empty_streak = 0
        self.installs = 0
        self.last_repriced = None

    def decide(self, raw, force=False):
        """One repricing cycle: ``(changed, factors)``.

        ``factors`` is what should be installed in the router after this
        cycle (the new set when ``changed``, the standing active set
        otherwise); ``changed`` says whether an install is warranted.
        ``force=True`` bypasses both the deadband and the empty-streak
        grace — the report is taken at face value (a manual operator
        call, not the cadenced loop).
        """
        raw = {key: float(f) for key, f in (raw or {}).items()
               if f and f > 0.0}
        with self._lock:
            if not raw:
                if force:
                    changed = bool(self.active)
                    self.active = {}
                    self.empty_streak = 0
                    if changed:
                        self._record_install()
                    return changed, {}
                self.empty_streak += 1
                if self.active and self.empty_streak >= self.empty_clears:
                    self.active = {}
                    self._record_install()
                    return True, {}
                return False, dict(self.active)
            self.empty_streak = 0
            if not force and not self._sustained_change(raw):
                return False, dict(self.active)
            self.active = dict(raw)
            self._record_install()
            return True, dict(raw)

    def _sustained_change(self, raw):
        """Did any factor move past the deadband vs the active set?"""
        if set(raw) != set(self.active):
            return True
        return any(abs(raw[key] / self.active[key] - 1.0) > self.threshold
                   for key in raw)

    def _record_install(self):
        self.installs += 1
        self.last_repriced = self._clock()

    def snapshot(self):
        """JSON-clean state for ``op: health`` / dashboards."""
        with self._lock:
            return {
                "factors": dict(self.active),
                "installs": self.installs,
                "last_repriced_unix": self.last_repriced,
                "threshold": self.threshold,
                "empty_clears": self.empty_clears,
                "empty_streak": self.empty_streak,
            }

    def __repr__(self):
        with self._lock:
            return ("RepricingPolicy(%d active factors, %d installs, "
                    "threshold=%.0f%%)" % (len(self.active), self.installs,
                                           self.threshold * 100.0))
