"""Tail-sampling flight recorder: keep the traces worth keeping.

Always-on tracing of every request is cheap at the head (minting a trace
context forces span recording only along that request's own path) but
retaining every completed trace is not. The :class:`FlightRecorder`
makes the retention decision *at completion*, when the request's fate
is known:

- **breach** — its measured value (e.g. front-end TTFT) exceeded the
  declared SLO threshold,
- **error** — it failed,
- **sample** — a random ``sample_rate`` fraction survives as a healthy
  baseline.

Everything else is dropped, so the bounded ring holds only the requests
an operator would actually open — the slowest real request of the last
minute is always inspectable, as a Chrome-trace document via
``op: flight``. Span collection for a retained request happens through
the ``fetch_spans`` callback (the cluster's cross-process
``trace_spans``), and only for retained requests — the common case pays
one ring lookup and one comparison.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque

from .export import to_chrome_trace
from .tracer import new_trace_id

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded ring of tail-sampled request traces.

    ``begin()`` mints a trace context for a request with no caller-
    supplied trace (returns ``None`` while disabled — the wiring treats
    that as "don't record"); ``finish()`` decides retention and, for the
    keepers, pulls the stitched spans. ``threshold_ms`` is the breach
    line (the cluster wires its declared TTFT objective in per call);
    ``sample_rate`` keeps a healthy-request baseline.
    """

    def __init__(self, capacity=64, sample_rate=0.0, threshold_ms=None):
        self.enabled = False
        self.capacity = int(capacity)
        self.sample_rate = float(sample_rate)
        self.threshold_ms = threshold_ms
        self._ring = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self.counts = {"breach": 0, "error": 0, "sample": 0, "dropped": 0}

    # ------------------------------------------------------------------
    def begin(self):
        """A fresh trace context for one request, or ``None`` when off."""
        if not self.enabled:
            return None
        return {"trace": new_trace_id(), "span": None}

    def finish(self, ctx, value_ms=None, error=None, threshold_ms=None,
               fetch_spans=None, **meta):
        """Decide one completed request's fate; returns the retained
        entry dict or ``None``.

        ``ctx`` is the context :meth:`begin` returned (``None`` is a
        no-op, so call sites need no enabled-check of their own).
        ``threshold_ms`` overrides the recorder's default breach line
        for this request; ``fetch_spans(trace_id)`` is invoked only for
        retained requests.
        """
        if ctx is None:
            return None
        threshold = (self.threshold_ms if threshold_ms is None
                     else threshold_ms)
        if error is not None:
            reason = "error"
        elif (threshold is not None and value_ms is not None
                and value_ms > threshold):
            reason = "breach"
        elif self.sample_rate > 0 and random.random() < self.sample_rate:
            reason = "sample"
        else:
            with self._lock:
                self.counts["dropped"] += 1
            return None
        trace_id = ctx["trace"] if isinstance(ctx, dict) else ctx
        spans = []
        if fetch_spans is not None:
            try:
                spans = fetch_spans(trace_id)
            except Exception:
                spans = []  # a crashed worker must not lose the entry
        entry = {
            "trace": trace_id,
            "reason": reason,
            "value_ms": None if value_ms is None else float(value_ms),
            "threshold_ms": threshold,
            "error": None if error is None else str(error),
            "wall_time": time.time(),
            "spans": spans,
            "meta": dict(meta),
        }
        with self._lock:
            self.counts[reason] += 1
            self._ring.append(entry)
        return entry

    # ------------------------------------------------------------------
    def entries(self, reason=None, window_s=None):
        """Retained entries, newest first, without their span payloads
        (``span_count`` instead — spans travel via :meth:`chrome`)."""
        horizon = (None if window_s is None
                   else time.time() - float(window_s))
        with self._lock:
            rows = list(self._ring)
        out = []
        for entry in reversed(rows):
            if reason is not None and entry["reason"] != reason:
                continue
            if horizon is not None and entry["wall_time"] < horizon:
                continue
            row = {k: v for k, v in entry.items() if k != "spans"}
            row["span_count"] = len(entry["spans"])
            out.append(row)
        return out

    def entry(self, trace_id=None, worst=False):
        """One retained entry with spans: by trace id, or the worst
        (highest ``value_ms``) breach/error when ``worst`` is set."""
        with self._lock:
            rows = list(self._ring)
        if trace_id is not None:
            for entry in reversed(rows):
                if entry["trace"] == trace_id:
                    return entry
            return None
        if worst:
            bad = [e for e in rows if e["reason"] in ("breach", "error")]
            pool = bad or rows
            if not pool:
                return None
            return max(pool, key=lambda e: e["value_ms"] or 0.0)
        return rows[-1] if rows else None

    def chrome(self, trace_id=None, worst=False, process_names=None):
        """Chrome-trace JSON document for one retained request, with the
        flight verdict in the entry, or ``None`` when nothing matches."""
        entry = self.entry(trace_id, worst=worst)
        if entry is None:
            return None
        doc = to_chrome_trace(entry["spans"], process_names=process_names)
        return {"entry": {k: v for k, v in entry.items() if k != "spans"},
                "chrome": doc}

    def clear(self):
        with self._lock:
            self._ring.clear()
            for key in self.counts:
                self.counts[key] = 0

    def __len__(self):
        with self._lock:
            return len(self._ring)

    def __repr__(self):
        with self._lock:
            return ("FlightRecorder(%s, %d/%d retained, counts=%r)"
                    % ("on" if self.enabled else "off", len(self._ring),
                       self.capacity, self.counts))
