"""NVDLA performance/PPA model (the paper's primary CNN baseline).

PPA constants come from Table VIII (28 nm, 1 GHz): NVDLA-Small is a
64-GOPS / 0.91 mm^2 / 55 mW configuration (32 INT8 MACs at 1 GHz), and
NVDLA-Large a 2048-GOPS / 5.5 mm^2 / 766 mW one (1024 MACs). The cycle
model mirrors the official NVDLA performance estimator: per-layer cycles =
MACs / (n_mac * utilisation), with utilisation degraded when the layer's
channel dims under-fill the fixed Atomic-C/Atomic-K datapath.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NVDLAModel", "nvdla_small", "nvdla_large"]


class NVDLAModel:
    """Analytic NVDLA-style MAC-array accelerator."""

    def __init__(self, name, n_mac, atomic_c, atomic_k, area_mm2, power_mw,
                 frequency_hz=1e9, node=28, datapath_efficiency=0.55):
        self.name = name
        self.n_mac = int(n_mac)
        self.atomic_c = int(atomic_c)
        self.atomic_k = int(atomic_k)
        self.area_mm2 = area_mm2
        self.power_mw = power_mw
        self.frequency_hz = frequency_hz
        self.node = node
        # The official NVDLA performance estimator reports 50-70% MAC
        # utilisation on ResNet-class convolutions (memory stalls, partial
        # tiles); 0.55 is the middle of that band.
        self.datapath_efficiency = datapath_efficiency

    @property
    def peak_gops(self):
        return 2.0 * self.n_mac * self.frequency_hz / 1e9

    def layer_utilization(self, k, n):
        """Datapath fill ratio for a GEMM with K input / N output features.

        The MAC array processes atomic_c input channels x atomic_k output
        channels per cycle; partial tiles waste lanes.
        """
        c_tiles = np.ceil(k / self.atomic_c)
        k_tiles = np.ceil(n / self.atomic_k)
        c_util = k / (c_tiles * self.atomic_c)
        k_util = n / (k_tiles * self.atomic_k)
        return float(c_util * k_util)

    def gemm_cycles(self, workload):
        """Cycles for one (M, K, N) GEMM workload."""
        util = self.layer_utilization(workload.k, workload.n)
        util = max(util * self.datapath_efficiency, 1e-3)
        return workload.macs / (self.n_mac * util)

    def run_cycles(self, workloads):
        return sum(self.gemm_cycles(w) for w in workloads)

    def run_seconds(self, workloads):
        return self.run_cycles(workloads) / self.frequency_hz

    def run_energy_mj(self, workloads):
        return self.power_mw * 1e-3 * self.run_seconds(workloads) * 1e3

    def __repr__(self):
        return "NVDLAModel(%s: %d MACs, %.0f GOPS)" % (
            self.name, self.n_mac, self.peak_gops)


def nvdla_small():
    """NVDLA-Small: 64 GOPS, 0.91 mm^2, 55 mW @ 28 nm / 1 GHz (Table VIII)."""
    return NVDLAModel("NVDLA-Small", n_mac=32, atomic_c=8, atomic_k=4,
                      area_mm2=0.91, power_mw=55.0)


def nvdla_large():
    """NVDLA-Large: 2048 GOPS, 5.5 mm^2, 766 mW @ 28 nm / 1 GHz."""
    return NVDLAModel("NVDLA-Large", n_mac=1024, atomic_c=32, atomic_k=32,
                      area_mm2=5.5, power_mw=766.0)
