"""Fig. 1: area/power efficiency of ALUs vs LUT-based approximate computing.

For a b-bit ALU executing a 1k x 1k x 1k GEMM, one MAC (2 ops) needs one
multiplier + one adder. Efficiency:

    OPs/um^2 = 2 / (area_mult + area_add)        (per cycle, i.e. ~per op
    OPs/pJ   = 2 / (energy_mult + energy_add)     slot at fixed frequency)

For the LUT design with vector length V and C centroids, each lookup
retires V MACs against one table-row read plus a 1/C share of the
similarity comparison (one comparison against each of the C centroids is
amortised over... the comparison happens once per input vector and is
reused across all N output columns). Equivalent bitwidth = log2(C)/V,
which is how the LUT curves extend *below* 1 bit on Fig. 1's x-axis.
"""

from __future__ import annotations

import numpy as np

from ..hw.arith import fp_add, fp_mult, int_add, int_mult
from ..hw.dpe import dpe_cost
from ..hw.memory import SRAM

__all__ = [
    "alu_efficiency",
    "lut_efficiency",
    "figure1_curves",
    "INT_BITWIDTHS",
    "FP_BITWIDTHS",
]

INT_BITWIDTHS = (1, 2, 4, 8, 16, 32, 64)
FP_BITWIDTHS = {4: "fp4", 8: "fp8", 16: "fp16", 32: "fp32", 64: "fp64"}


def alu_efficiency(bits, kind="int_mac", node=28):
    """(ops_per_um2, ops_per_pj) for one ALU op type at ``bits`` width.

    ``kind``: 'int_add', 'int_mult', 'fp_add', 'fp_mult', 'int_mac',
    'fp_mac'.
    """
    if kind == "int_add":
        unit = int_add(bits, node)
        ops = 1.0
    elif kind == "int_mult":
        unit = int_mult(bits, node)
        ops = 1.0
    elif kind == "fp_add":
        unit = fp_add(FP_BITWIDTHS[bits], node)
        ops = 1.0
    elif kind == "fp_mult":
        unit = fp_mult(FP_BITWIDTHS[bits], node)
        ops = 1.0
    elif kind == "int_mac":
        unit = int_add(bits, node) + int_mult(bits, node)
        ops = 2.0
    elif kind == "fp_mac":
        unit = fp_add(FP_BITWIDTHS[bits], node) + fp_mult(FP_BITWIDTHS[bits], node)
        ops = 2.0
    else:
        raise ValueError("unknown ALU kind %r" % (kind,))
    return ops / unit.area_um2, ops / unit.energy_pj


def lut_efficiency(v, c, n=1024, lut_bits=8, metric="l2", precision="fp16",
                   node=28):
    """(equivalent_bits, ops_per_um2, ops_per_pj) of the LUT design point.

    One lookup retires 2*v ops from an SRAM row read; the similarity
    comparison (c dPE compares per input vector) is amortised over the N
    output columns the index is reused for.
    """
    eq_bits = np.ceil(np.log2(c)) / v
    # Storage slice serving the lookups: c x Tn entries; per-lookup share of
    # its area is the full slice divided by the c*Tn entries it serves...
    # Area efficiency uses throughput per unit area: one row read per cycle
    # retires 2*v ops from a c x Tn-entry macro (take Tn = 128).
    tn = 128
    lut = SRAM(c * tn * lut_bits, width=tn * lut_bits, node=node)
    dpe = dpe_cost(v, metric, precision, node)
    # Per cycle: Tn * v MACs; comparison cost amortised over N reuses.
    ops_per_cycle = 2.0 * tn * v
    sim_area_share = dpe.area_um2 * c / max(n / tn, 1.0)
    area = lut.area_um2() + sim_area_share
    # Energy per cycle: one row read + amortised comparisons.
    energy = lut.read_energy_pj() + dpe.energy_pj * c * tn / max(n, 1)
    return float(eq_bits), ops_per_cycle / area, ops_per_cycle / energy


def figure1_curves(node=28):
    """All Fig. 1 series: dict name -> list of (bitwidth, ops/um2, ops/pJ)."""
    curves = {}
    for kind in ("int_add", "int_mult"):
        curves[kind] = [
            (b,) + alu_efficiency(b, kind, node) for b in INT_BITWIDTHS
        ]
    for kind in ("fp_add", "fp_mult"):
        curves[kind] = [
            (b,) + alu_efficiency(b, kind, node) for b in sorted(FP_BITWIDTHS)
        ]
    for v in (2, 4, 8, 16):
        series = []
        for c in (8, 16, 32, 64, 128, 256, 512):
            series.append(lut_efficiency(v, c, node=node))
        curves["lut_v%d" % v] = series
    return curves
