"""Published accelerator PPA specs (Table VIII) and node normalisation.

These rows are taken directly from the paper's Table VIII; the
``scaled_efficiency`` helpers apply the Stillmaker-Baas factors
(:mod:`repro.hw.scaling`) to bring every design to a common node, exactly
the footnote-a adjustment in the table.
"""

from __future__ import annotations

from ..hw.scaling import scale_efficiency

__all__ = ["AcceleratorSpec", "PUBLISHED_SPECS", "comparison_table"]


class AcceleratorSpec:
    """One Table VIII row."""

    def __init__(self, name, node_nm, freq_mhz, area_mm2, power_mw, perf_gops,
                 functions):
        self.name = name
        self.node_nm = node_nm
        self.freq_mhz = freq_mhz
        self.area_mm2 = area_mm2
        self.power_mw = power_mw
        self.perf_gops = perf_gops
        self.functions = functions

    @property
    def area_efficiency(self):
        """GOPS/mm^2 at the native node."""
        return self.perf_gops / self.area_mm2

    @property
    def power_efficiency(self):
        """GOPS/mW at the native node."""
        return self.perf_gops / self.power_mw

    def scaled_area_efficiency(self, to_node=28):
        return scale_efficiency(self.area_efficiency, self.node_nm, to_node,
                                "area")

    def scaled_power_efficiency(self, to_node=28):
        return scale_efficiency(self.power_efficiency, self.node_nm, to_node,
                                "power")

    def __repr__(self):
        return "AcceleratorSpec(%s @%dnm, %.0f GOPS)" % (
            self.name, self.node_nm, self.perf_gops)


PUBLISHED_SPECS = [
    AcceleratorSpec("NVIDIA A100", 7, 1512, 826.0, 300000.0, 624000.0, "C/T"),
    AcceleratorSpec("Gemmini", 16, 500, 1.21, 312.41, 256.0, "C/T"),
    AcceleratorSpec("NVDLA-Small", 28, 1000, 0.91, 55.0, 64.0, "C"),
    AcceleratorSpec("NVDLA-Large", 28, 1000, 5.5, 766.0, 2048.0, "C"),
    AcceleratorSpec("ELSA", 40, 1000, 2.147, 1047.08, 1088.0, "T"),
    AcceleratorSpec("FACT", 28, 500, 6.03, 337.07, 928.0, "T"),
    AcceleratorSpec("RRAM-DNN", 22, 120, 10.8, 127.9, 123.0, "C"),
]


def comparison_table(lut_dla_designs, to_node=28):
    """Table VIII rows (published + LUT-DLA designs), node-normalised.

    ``lut_dla_designs`` are :class:`repro.hw.LUTDLADesign` instances.
    """
    rows = []
    for spec in PUBLISHED_SPECS:
        rows.append({
            "name": spec.name,
            "node_nm": spec.node_nm,
            "area_mm2": spec.area_mm2,
            "power_mw": spec.power_mw,
            "perf_gops": spec.perf_gops,
            "area_eff": spec.scaled_area_efficiency(to_node),
            "power_eff": spec.scaled_power_efficiency(to_node),
            "functions": spec.functions,
        })
    for design in lut_dla_designs:
        rows.append({
            "name": design.name,
            "node_nm": design.node,
            "area_mm2": design.area_mm2(),
            "power_mw": design.power_mw(),
            "perf_gops": design.peak_gops(),
            "area_eff": design.area_efficiency(),
            "power_eff": design.power_efficiency(),
            "functions": "C/T",
        })
    return rows
