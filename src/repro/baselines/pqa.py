"""PQA (Product-Quantization Accelerator) baseline — Table IX / Fig. 12.

Two facets of PQA are modelled:

1. **Hardware** (:class:`PQAModel`): PQA keeps the *entire layer's* LUT
   resident on chip (no LS-style slicing, no ping-pong), so (a) on-chip
   memory scales with the full Nc x c x N table and (b) compute pauses
   while each layer's table streams in. Lookups proceed ``banks`` entries
   per cycle.

2. **Training** (:func:`pqa_style_training`, :func:`pecan_style_training`):
   both prior works train from scratch with randomly initialised centroids
   and weights in a single stage — the setup LUTBoost's multistage
   pipeline is compared against in Fig. 12. PECAN additionally uses
   distance-only (CAM-style) layers; we model its training protocol (from
   scratch, single stage, L2) which is the accuracy-relevant aspect.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PQAModel", "pqa_default", "pqa_style_training",
           "pecan_style_training"]


class PQAModel:
    """Analytic model of the PQA dataflow (whole-layer LUT residency)."""

    def __init__(self, name="PQA", banks=16, lut_bits=12,
                 load_bits_per_cycle=16, frequency_hz=300e6):
        self.name = name
        self.banks = int(banks)
        self.lut_bits = int(lut_bits)
        self.load_bits_per_cycle = float(load_bits_per_cycle)
        self.frequency_hz = frequency_hz

    def onchip_memory_kb(self, workload):
        """Whole-layer LUT + indices for one vector (Table IX row 1)."""
        nc = int(np.ceil(workload.k / workload.v))
        lut_bits = nc * workload.c * workload.n * self.lut_bits
        extra = 2048  # staging registers / index vector
        return (lut_bits + extra) / 8.0 / 1024.0

    def load_cycles(self, workload):
        """Compute pauses while the full LUT streams in (no ping-pong)."""
        nc = int(np.ceil(workload.k / workload.v))
        total_bits = nc * workload.c * workload.n * self.lut_bits
        return int(np.ceil(total_bits / self.load_bits_per_cycle))

    def lookup_cycles(self, workload):
        """One entry per bank per cycle across the N outputs."""
        nc = int(np.ceil(workload.k / workload.v))
        per_row = nc * int(np.ceil(workload.n / self.banks))
        return workload.m * per_row

    def gemm_cycles(self, workload):
        # Load and compute are serialised: the architectural deficiency
        # Table IX attributes to PQA ("causing a compute pause").
        return self.load_cycles(workload) + self.lookup_cycles(workload)

    def run_cycles(self, workloads):
        return sum(self.gemm_cycles(w) for w in workloads)

    def __repr__(self):
        return "PQAModel(banks=%d, lut_bits=%d)" % (self.banks, self.lut_bits)


def pqa_default():
    """PQA with the Table IX configuration (16 banks, 12-bit entries)."""
    return PQAModel()


def _from_scratch_training(model, train_dataset, eval_dataset, v, c, metric,
                           epochs, lr, batch_size, forward, seed):
    """Shared single-stage from-scratch protocol of PQA and PECAN."""
    from ..lutboost.converter import ConversionPolicy, convert_model, lut_operators
    from ..lutboost.trainer import TrainingLog, train_epochs
    from ..nn.data import evaluate_accuracy
    from ..nn.optim import Adam

    convert_model(model, ConversionPolicy(v, c, metric))
    rng = np.random.default_rng(seed)
    # From scratch: re-randomise *weights* as well as centroids.
    for p in model.parameters():
        p.data = rng.normal(0, 0.1, p.data.shape)
    for i, (_, op) in enumerate(lut_operators(model)):
        op.randomize_centroids(seed=seed + i)
    log = TrainingLog()
    log.mark_stage("from_scratch")
    train_epochs(model, train_dataset, epochs, Adam(model.parameters(), lr),
                 batch_size=batch_size, forward=forward, log=log, seed=seed)
    if eval_dataset is not None:
        log.log_accuracy("final", evaluate_accuracy(model, eval_dataset,
                                                    forward=forward))
    return log


def pqa_style_training(model, train_dataset, eval_dataset=None, v=4, c=16,
                       metric="l2", epochs=9, lr=1e-3, batch_size=32,
                       forward=None, seed=0):
    """PQA's training protocol: from scratch, single stage, L2 only."""
    return _from_scratch_training(model, train_dataset, eval_dataset, v, c,
                                  metric, epochs, lr, batch_size, forward,
                                  seed)


def pecan_style_training(model, train_dataset, eval_dataset=None, v=4, c=16,
                         epochs=9, lr=1e-3, batch_size=32, forward=None,
                         seed=0):
    """PECAN's protocol: from scratch, single stage (L2 distance network)."""
    return _from_scratch_training(model, train_dataset, eval_dataset, v, c,
                                  "l2", epochs, lr, batch_size, forward,
                                  seed)
