"""Gemmini systolic-array model (the paper's same-power-budget baseline).

Table VIII: 16 nm, 500 MHz, 1.21 mm^2, 312 mW, 256 GOPS — a 16x16
weight-stationary INT8 systolic array. The cycle model accounts for tile
fill/drain overhead, the dominant inefficiency for the skinny GEMMs of
im2col'd CNN layers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GemminiModel", "gemmini_default"]


class GemminiModel:
    """Analytic weight-stationary systolic array."""

    def __init__(self, name="Gemmini", dim=16, area_mm2=1.21, power_mw=312.41,
                 frequency_hz=500e6, node=16):
        self.name = name
        self.dim = int(dim)
        self.area_mm2 = area_mm2
        self.power_mw = power_mw
        self.frequency_hz = frequency_hz
        self.node = node

    @property
    def peak_gops(self):
        return 2.0 * self.dim * self.dim * self.frequency_hz / 1e9

    def gemm_cycles(self, workload):
        """Tile-level cycle count of a (M, K, N) GEMM.

        The array computes a dim x dim output tile per pass; each pass
        streams K elements plus ~2*dim fill/drain cycles (weight load and
        pipeline drain for weight-stationary operation).
        """
        m_tiles = int(np.ceil(workload.m / self.dim))
        n_tiles = int(np.ceil(workload.n / self.dim))
        k_passes = int(np.ceil(workload.k / self.dim))
        per_pass = self.dim + 2 * self.dim  # stream + fill/drain
        return m_tiles * n_tiles * k_passes * per_pass

    def run_cycles(self, workloads):
        return sum(self.gemm_cycles(w) for w in workloads)

    def run_seconds(self, workloads):
        return self.run_cycles(workloads) / self.frequency_hz

    def run_energy_mj(self, workloads):
        return self.power_mw * 1e-3 * self.run_seconds(workloads) * 1e3

    def __repr__(self):
        return "GemminiModel(%dx%d, %.0f GOPS)" % (
            self.dim, self.dim, self.peak_gops)


def gemmini_default():
    """Gemmini's published 16x16 INT8 configuration (Table VIII)."""
    return GemminiModel()
