"""Baseline accelerators and efficiency curves for the paper's comparisons."""

from .alu import (
    FP_BITWIDTHS,
    INT_BITWIDTHS,
    alu_efficiency,
    figure1_curves,
    lut_efficiency,
)
from .gemmini import GemminiModel, gemmini_default
from .nvdla import NVDLAModel, nvdla_large, nvdla_small
from .pqa import PQAModel, pecan_style_training, pqa_default, pqa_style_training
from .specs import PUBLISHED_SPECS, AcceleratorSpec, comparison_table

__all__ = [
    "alu_efficiency",
    "lut_efficiency",
    "figure1_curves",
    "INT_BITWIDTHS",
    "FP_BITWIDTHS",
    "NVDLAModel",
    "nvdla_small",
    "nvdla_large",
    "GemminiModel",
    "gemmini_default",
    "PQAModel",
    "pqa_default",
    "pqa_style_training",
    "pecan_style_training",
    "AcceleratorSpec",
    "PUBLISHED_SPECS",
    "comparison_table",
]
