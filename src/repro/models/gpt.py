"""Mini autoregressive decoder (GPT-style) for the generation subsystem.

The serving stack's encoder models classify whole sequences; this decoder
predicts the *next token* at every position, which is the workload the
:mod:`repro.gen` subsystem serves: prefill a prompt through a bucketed
batched plan, then decode one token at a time against a KV cache. The
QKV/FFN/head Linear layers are the GEMMs the LUT conversion replaces,
exactly as in the encoder zoo — ``gpt_nano`` is deliberately tiny so the
whole prefill + decode path is testable bit-for-bit in seconds.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import (
    Embedding,
    LayerNorm,
    Linear,
    Module,
    TransformerDecoderLayer,
)
from ..nn.tensor import Tensor

__all__ = ["TransformerDecoderLM", "gpt_nano"]


class TransformerDecoderLM(Module):
    """Token embedding + learned positions + causal decoder stack + LM head.

    ``forward(tokens)`` maps ``(batch, seq)`` token ids to
    ``(batch, seq, vocab)`` next-token logits; position ``i``'s logits
    depend only on tokens ``0..i`` (causal masking), which is what makes
    right-padded bucket execution bit-identical at real positions.
    """

    def __init__(self, vocab_size, dim=32, num_heads=4, num_layers=2,
                 ffn_dim=None, max_len=32, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        ffn_dim = ffn_dim or 4 * dim
        self.vocab_size = vocab_size
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.max_len = max_len
        self.tok_embed = Embedding(vocab_size, dim, rng=rng)
        self.pos_embed = Embedding(max_len, dim, rng=rng)
        self.blocks = [
            TransformerDecoderLayer(dim, num_heads, ffn_dim, rng=rng)
            for _ in range(num_layers)
        ]
        self.final_norm = LayerNorm(dim)
        self.head = Linear(dim, vocab_size, rng=rng)

    def forward(self, tokens):
        # Keep the original ``tokens`` object flowing into the embedding
        # (Embedding casts to int itself); the serving tracer relies on
        # value identity to see the lookup as input-dependent.
        data = tokens.data if isinstance(tokens, Tensor) else np.asarray(tokens)
        seq = data.shape[1]
        if seq > self.max_len:
            raise ValueError("sequence length %d exceeds max_len %d"
                             % (seq, self.max_len))
        x = self.tok_embed(tokens) + self.pos_embed(np.arange(seq))
        for block in self.blocks:
            x = block(x)
        x = self.final_norm(x)
        return self.head(x)


def gpt_nano(vocab_size=64, seed=0):
    """Smallest decoder of the zoo: 2 blocks, 4 heads, dim 32, 32 positions."""
    return TransformerDecoderLM(vocab_size, dim=32, num_heads=4,
                                num_layers=2, ffn_dim=64, max_len=32,
                                seed=seed)
