"""Plain MLP classifier — the smallest model in the zoo (tests, examples)."""

from __future__ import annotations

import numpy as np

from ..nn.layers import Linear, Module, ReLU, Sequential

__all__ = ["MLP", "mlp"]


class MLP(Module):
    def __init__(self, in_features, hidden, num_classes, depth=2, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        layers = [Linear(in_features, hidden, rng=rng), ReLU()]
        for _ in range(depth - 2):
            layers.extend([Linear(hidden, hidden, rng=rng), ReLU()])
        layers.append(Linear(hidden, num_classes, rng=rng))
        self.net = Sequential(*layers)

    def forward(self, x):
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.net(x)


def mlp(in_features, hidden=64, num_classes=10, depth=2, seed=0):
    return MLP(in_features, hidden, num_classes, depth=depth, seed=seed)
