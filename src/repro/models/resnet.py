"""CIFAR-style ResNets (He et al.) scaled for the numpy substrate.

The paper evaluates ResNet-20/32/56 (CIFAR) and ResNet-18/34/50 (ImageNet).
We keep the exact topologies — 3 stages of ``(depth - 2) / 6`` basic blocks
for the CIFAR family, the [2,2,2,2] stage layout for ResNet-18 — but expose
``width`` and ``image_size`` knobs so CPU training stays tractable. The
*structure* (which GEMMs exist, their M/K/N shapes after im2col) is what the
hardware evaluation consumes, and that is preserved exactly up to width.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
    Sequential,
)

__all__ = [
    "BasicBlock",
    "ResNetCIFAR",
    "resnet20",
    "resnet32",
    "resnet56",
    "ResNetImageNet",
    "resnet18",
    "resnet34",
]


class BasicBlock(Module):
    """Standard two-conv residual block with identity or projection shortcut."""

    def __init__(self, in_channels, out_channels, stride=1, rng=None):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride,
                            padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1,
                            padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Conv2d(in_channels, out_channels, 1, stride=stride,
                                   bias=False, rng=rng)
            self.shortcut_bn = BatchNorm2d(out_channels)
        else:
            self.shortcut = None
            self.shortcut_bn = None

    def forward(self, x):
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        identity = x
        if self.shortcut is not None:
            identity = self.shortcut_bn(self.shortcut(x))
        return (out + identity).relu()


class ResNetCIFAR(Module):
    """ResNet-(6n+2) for CIFAR-shaped inputs.

    depth 20 -> n=3, depth 32 -> n=5, depth 56 -> n=9 blocks per stage.
    """

    def __init__(self, depth, num_classes=10, width=16, in_channels=3, seed=0):
        super().__init__()
        if (depth - 2) % 6:
            raise ValueError("CIFAR ResNet depth must be 6n+2, got %d" % depth)
        n = (depth - 2) // 6
        rng = np.random.default_rng(seed)
        self.depth = depth
        widths = (width, 2 * width, 4 * width)
        self.stem = Conv2d(in_channels, widths[0], 3, padding=1, bias=False,
                           rng=rng)
        self.stem_bn = BatchNorm2d(widths[0])
        self.stage1 = self._make_stage(widths[0], widths[0], n, 1, rng)
        self.stage2 = self._make_stage(widths[0], widths[1], n, 2, rng)
        self.stage3 = self._make_stage(widths[1], widths[2], n, 2, rng)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(widths[2], num_classes, rng=rng)

    @staticmethod
    def _make_stage(in_channels, out_channels, blocks, stride, rng):
        layers = [BasicBlock(in_channels, out_channels, stride, rng=rng)]
        layers.extend(
            BasicBlock(out_channels, out_channels, 1, rng=rng)
            for _ in range(blocks - 1)
        )
        return Sequential(*layers)

    def forward(self, x):
        out = self.stem_bn(self.stem(x)).relu()
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        return self.fc(self.pool(out))


def resnet20(num_classes=10, width=8, seed=0):
    """ResNet-20 (paper Table IV row 1), width-scaled for CPU training."""
    return ResNetCIFAR(20, num_classes=num_classes, width=width, seed=seed)


def resnet32(num_classes=10, width=8, seed=0):
    return ResNetCIFAR(32, num_classes=num_classes, width=width, seed=seed)


def resnet56(num_classes=10, width=8, seed=0):
    return ResNetCIFAR(56, num_classes=num_classes, width=width, seed=seed)


class ResNetImageNet(Module):
    """ImageNet-style ResNet with basic blocks (ResNet-18/34 topology)."""

    STAGES = {18: (2, 2, 2, 2), 34: (3, 4, 6, 3)}

    def __init__(self, depth, num_classes=100, width=16, in_channels=3, seed=0):
        super().__init__()
        if depth not in self.STAGES:
            raise ValueError("supported depths: %s" % sorted(self.STAGES))
        blocks = self.STAGES[depth]
        rng = np.random.default_rng(seed)
        self.depth = depth
        widths = (width, 2 * width, 4 * width, 8 * width)
        # 3x3 stem (CIFAR-style stem keeps small synthetic images usable).
        self.stem = Conv2d(in_channels, widths[0], 3, padding=1, bias=False,
                           rng=rng)
        self.stem_bn = BatchNorm2d(widths[0])
        self.stage1 = ResNetCIFAR._make_stage(widths[0], widths[0], blocks[0], 1, rng)
        self.stage2 = ResNetCIFAR._make_stage(widths[0], widths[1], blocks[1], 2, rng)
        self.stage3 = ResNetCIFAR._make_stage(widths[1], widths[2], blocks[2], 2, rng)
        self.stage4 = ResNetCIFAR._make_stage(widths[2], widths[3], blocks[3], 2, rng)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(widths[3], num_classes, rng=rng)

    def forward(self, x):
        out = self.stem_bn(self.stem(x)).relu()
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        out = self.stage4(out)
        return self.fc(self.pool(out))


def resnet18(num_classes=100, width=8, seed=0):
    return ResNetImageNet(18, num_classes=num_classes, width=width, seed=seed)


def resnet34(num_classes=100, width=8, seed=0):
    return ResNetImageNet(34, num_classes=num_classes, width=width, seed=seed)
