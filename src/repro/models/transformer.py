"""Mini transformer encoders standing in for BERT / DistilBERT / OPT-125M.

The GLUE evaluation of Table VI converts the QKV-projection and FFN linear
layers to LUT operators; these mini encoders keep that exact layer
structure (per-head attention with four projections, GELU FFN) at a width
the numpy substrate can train in seconds.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import (
    Embedding,
    LayerNorm,
    Linear,
    Module,
    TransformerEncoderLayer,
)
from ..nn.tensor import Tensor

__all__ = [
    "TransformerClassifier",
    "bert_mini",
    "distilbert_mini",
    "opt_mini",
]


class TransformerClassifier(Module):
    """Token embedding + learned positions + encoder stack + mean-pool head."""

    def __init__(self, vocab_size, num_classes, dim=32, num_heads=4,
                 num_layers=2, ffn_dim=None, max_len=32, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        ffn_dim = ffn_dim or 4 * dim
        self.dim = dim
        self.max_len = max_len
        self.tok_embed = Embedding(vocab_size, dim, rng=rng)
        self.pos_embed = Embedding(max_len, dim, rng=rng)
        self.blocks = [
            TransformerEncoderLayer(dim, num_heads, ffn_dim, rng=rng)
            for _ in range(num_layers)
        ]
        self.final_norm = LayerNorm(dim)
        self.head = Linear(dim, num_classes, rng=rng)

    def forward(self, tokens):
        # Keep the original ``tokens`` object (Tensor or array) flowing into
        # the embedding: Embedding handles the int cast itself, and the
        # serving tracer relies on value identity to recognise the lookup
        # as input-dependent rather than a bakeable constant.
        data = tokens.data if isinstance(tokens, Tensor) else np.asarray(tokens)
        seq = data.shape[1]
        if seq > self.max_len:
            raise ValueError("sequence length %d exceeds max_len %d"
                             % (seq, self.max_len))
        x = self.tok_embed(tokens) + self.pos_embed(np.arange(seq))
        for block in self.blocks:
            x = block(x)
        x = self.final_norm(x)
        pooled = x.mean(axis=1)
        return self.head(pooled)


def bert_mini(vocab_size=64, num_classes=2, seed=0):
    """BERT stand-in: deepest/widest of the three (Table VI row 'BERT')."""
    return TransformerClassifier(vocab_size, num_classes, dim=32, num_heads=4,
                                 num_layers=3, seed=seed)


def distilbert_mini(vocab_size=64, num_classes=2, seed=0):
    """DistilBERT stand-in: half the layers of bert_mini."""
    return TransformerClassifier(vocab_size, num_classes, dim=32, num_heads=4,
                                 num_layers=2, seed=seed)


def opt_mini(vocab_size=64, num_classes=2, seed=0):
    """OPT-125M stand-in: wider FFN, fewer heads (decoder-width flavour)."""
    return TransformerClassifier(vocab_size, num_classes, dim=32, num_heads=2,
                                 num_layers=3, ffn_dim=96, seed=seed)
