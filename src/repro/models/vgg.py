"""VGG-11 (configuration A) scaled for the numpy substrate (Table IV)."""

from __future__ import annotations

import numpy as np

from ..nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)

__all__ = ["VGG", "vgg11"]

# VGG-11 layout: numbers are output channels (x width/64), 'M' is max-pool.
_VGG11_CFG = (64, "M", 128, "M", 256, 256, "M", 512, 512, "M")


class VGG(Module):
    """VGG feature extractor + linear classifier."""

    def __init__(self, cfg=_VGG11_CFG, num_classes=10, width=64, in_channels=3,
                 seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        layers = []
        channels = in_channels
        for item in cfg:
            if item == "M":
                layers.append(MaxPool2d(2))
            else:
                out_channels = max(4, item * width // 64)
                layers.append(Conv2d(channels, out_channels, 3, padding=1,
                                     bias=False, rng=rng))
                layers.append(BatchNorm2d(out_channels))
                layers.append(ReLU())
                channels = out_channels
        self.features = Sequential(*layers)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(channels, num_classes, rng=rng)

    def forward(self, x):
        return self.classifier(self.pool(self.features(x)))


def vgg11(num_classes=10, width=16, seed=0):
    """Width-scaled VGG-11 (paper Table IV 'VGG11' rows)."""
    return VGG(num_classes=num_classes, width=width, seed=seed)
