"""Evaluation model zoo (CNNs + transformers), topologies per the paper."""

from .lenet import LeNet, lenet
from .mlp import MLP, mlp
from .resnet import (
    BasicBlock,
    ResNetCIFAR,
    ResNetImageNet,
    resnet18,
    resnet20,
    resnet32,
    resnet34,
    resnet56,
)
from .gpt import TransformerDecoderLM, gpt_nano
from .transformer import (
    TransformerClassifier,
    bert_mini,
    distilbert_mini,
    opt_mini,
)
from .vgg import VGG, vgg11

__all__ = [
    "BasicBlock",
    "ResNetCIFAR",
    "ResNetImageNet",
    "resnet20",
    "resnet32",
    "resnet56",
    "resnet18",
    "resnet34",
    "VGG",
    "vgg11",
    "LeNet",
    "lenet",
    "MLP",
    "mlp",
    "TransformerClassifier",
    "TransformerDecoderLM",
    "gpt_nano",
    "bert_mini",
    "distilbert_mini",
    "opt_mini",
]
