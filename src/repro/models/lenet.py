"""LeNet-5 style network (paper Table IV, LeNet/MNIST row)."""

from __future__ import annotations

import numpy as np

from ..nn.layers import (
    AvgPool2d,
    Conv2d,
    Flatten,
    Linear,
    Module,
)

__all__ = ["LeNet", "lenet"]


class LeNet(Module):
    """Classic conv-pool-conv-pool-fc-fc-fc, sized by ``image_size``."""

    def __init__(self, num_classes=10, in_channels=1, image_size=16, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = Conv2d(in_channels, 6, 3, padding=1, rng=rng)
        self.pool1 = AvgPool2d(2)
        self.conv2 = Conv2d(6, 16, 3, padding=1, rng=rng)
        self.pool2 = AvgPool2d(2)
        feat = image_size // 4
        self.flatten = Flatten()
        self.fc1 = Linear(16 * feat * feat, 64, rng=rng)
        self.fc2 = Linear(64, 32, rng=rng)
        self.fc3 = Linear(32, num_classes, rng=rng)

    def forward(self, x):
        out = self.pool1(self.conv1(x).relu())
        out = self.pool2(self.conv2(out).relu())
        out = self.flatten(out)
        out = self.fc1(out).relu()
        out = self.fc2(out).relu()
        return self.fc3(out)


def lenet(num_classes=10, image_size=16, seed=0):
    return LeNet(num_classes=num_classes, image_size=image_size, seed=seed)
