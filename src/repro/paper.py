"""One-call regeneration of the paper's structural tables and figures.

This module is the programmatic face of the benchmark harness: each
function returns plain rows (list of dicts) for one table/figure, and
:func:`regenerate_all` collects everything that does not require model
training. Training-based experiments (Figs. 7/8/12, Tables II/IV/V/VI)
live in ``benchmarks/`` because they take minutes, not milliseconds.

Example::

    from repro import paper
    from repro.evaluation import format_table

    print(format_table(paper.table1()))
    print(format_table(paper.table8()))
"""

from __future__ import annotations

from .baselines import (
    comparison_table,
    figure1_curves,
    gemmini_default,
    nvdla_large,
    nvdla_small,
    pqa_default,
)
from .evaluation import end_to_end_comparison
from .hw import IMMConfig, imm_sram_kb, paper_designs
from .lutboost import GemmWorkload
from .sim import (
    SimConfig,
    bert_workloads,
    dataflow_table,
    resnet_workloads,
    simulate_gemm,
)

__all__ = [
    "figure1",
    "table1",
    "table7",
    "table8",
    "table9",
    "figure13",
    "figure14",
    "regenerate_all",
]


def figure1():
    """Fig. 1 rows: efficiency of ALU op types and LUT design points."""
    rows = []
    for name, series in figure1_curves().items():
        for bits, area_eff, energy_eff in series:
            rows.append({"series": name, "bitwidth": float(bits),
                         "ops_per_um2": area_eff, "ops_per_pj": energy_eff})
    return rows


def table1(m=512, k=768, n=768, v=9, c=32, tn=32):
    """Table I rows: on-chip memory per dataflow."""
    return dataflow_table(m=m, k=k, n=n, v=v, c=c, tn=tn)


def table7():
    """Table VII rows: IMM settings and resources for Designs 1-3."""
    rows = []
    for design in paper_designs():
        rows.append({
            "design": design.name, "v": design.v, "Nc": design.c,
            "Tn": design.tn, "M": design.m_tile,
            "sram_kb": design.sram_kb_per_imm(),
            "bandwidth_gbps": design.min_bandwidth_gbps() / design.n_imm,
        })
    return rows


def table8(to_node=28):
    """Table VIII rows: PPA comparison, efficiencies scaled to one node."""
    return comparison_table(paper_designs(), to_node=to_node)


def table9():
    """Table IX rows: LUT-DLA vs PQA on the 512x768x768 GEMM."""
    workload = GemmWorkload(512, 768, 768, v=4, c=32)
    pqa = pqa_default()
    lut = simulate_gemm(workload, SimConfig(tn=16, n_imm=1, n_ccu=1,
                                            bandwidth_bits_per_cycle=64))
    return [
        {"arch": "PQA",
         "onchip_kb": pqa.onchip_memory_kb(workload),
         "kcycles": pqa.run_cycles([workload]) / 1e3,
         "dataflow": "-", "pingpong": "no"},
        {"arch": "LUT-DLA",
         "onchip_kb": imm_sram_kb(IMMConfig(c=32, tn=16, m_tile=512)),
         "kcycles": lut.total_cycles / 1e3,
         "dataflow": "LS", "pingpong": "yes"},
    ]


def _end_to_end(models=None):
    models = models or ("resnet18", "resnet34", "resnet50", "bert")
    workload_map = {}
    for name in models:
        if name == "bert":
            workload_map[name] = bert_workloads(v=4, c=16)
        else:
            workload_map[name] = resnet_workloads(int(name[6:]), v=4, c=16)
    return end_to_end_comparison(
        workload_map, paper_designs(),
        [nvdla_small(), nvdla_large(), gemmini_default()])


def figure13(models=None):
    """Fig. 13 rows: end-to-end latency/energy per (model, hardware)."""
    rows = []
    for model, per_hw in _end_to_end(models).items():
        for hw, res in per_hw.items():
            rows.append({"model": model, "hw": hw,
                         "latency_ms": res.seconds * 1e3,
                         "energy_mj": res.energy_mj,
                         "throughput_gops": res.throughput_gops})
    return rows


def figure14(models=("resnet18", "bert")):
    """Fig. 14 rows: speedup / efficiency normalised to NVDLA-Small."""
    rows = []
    for model, per_hw in _end_to_end(models).items():
        ref = per_hw["NVDLA-Small"]
        for hw, res in per_hw.items():
            norm = res.normalized_to(ref)
            rows.append({"model": model, "hw": hw,
                         "speedup": norm["speedup"],
                         "area_eff_ratio": norm["area_eff_ratio"],
                         "energy_eff_ratio": norm["energy_eff_ratio"]})
    return rows


def regenerate_all():
    """All training-free experiments as {name: rows}."""
    return {
        "figure1": figure1(),
        "table1": table1(),
        "table7": table7(),
        "table8": table8(),
        "table9": table9(),
        "figure13": figure13(),
        "figure14": figure14(),
    }


def _main():
    """CLI: ``python -m repro.paper`` prints every training-free table."""
    from .evaluation import format_table

    titles = {
        "figure1": "Fig. 1 — ALU vs LUT efficiency",
        "table1": "Table I — dataflow on-chip memory (KB)",
        "table7": "Table VII — IMM settings and resources",
        "table8": "Table VIII — PPA comparison (scaled to 28 nm)",
        "table9": "Table IX — LUT-DLA vs PQA",
        "figure13": "Fig. 13 — end-to-end latency / energy",
        "figure14": "Fig. 14 — PPA normalised to NVDLA-Small",
    }
    for name, rows in regenerate_all().items():
        print("\n" + "=" * 70)
        print(titles[name])
        print("=" * 70)
        print(format_table(rows, floatfmt="%.4g"))


if __name__ == "__main__":
    _main()
