"""Synthetic datasets replacing the paper's image / GLUE corpora."""

from .synthetic_images import (
    SyntheticImageSpec,
    cifar10_like,
    cifar100_like,
    imagenet_like,
    make_image_dataset,
    mnist_like,
    tiny_imagenet_like,
)
from .synthetic_text import GLUE_TASKS, glue_like_suite, make_text_task

__all__ = [
    "SyntheticImageSpec",
    "make_image_dataset",
    "cifar10_like",
    "cifar100_like",
    "mnist_like",
    "tiny_imagenet_like",
    "imagenet_like",
    "GLUE_TASKS",
    "make_text_task",
    "glue_like_suite",
]
