"""Synthetic GLUE-like sequence-classification suite (Table VI substitute).

Each task draws class-conditional token distributions over a shared
vocabulary; sentence-pair tasks (QQP/QNLI/MNLI/MRPC) concatenate two
segments with a SEP token and label by segment relatedness. STS-B, a
regression task in real GLUE, is binned into 3 ordinal classes. Difficulty
per task is tuned via distribution overlap so the FP accuracy spread
resembles the paper's (high 80s to low 90s on most tasks).
"""

from __future__ import annotations

import zlib

import numpy as np

from ..nn.data import ArrayDataset

__all__ = ["GLUE_TASKS", "make_text_task", "glue_like_suite"]

# name -> (num_classes, pair_task, distribution_sharpness)
GLUE_TASKS = {
    "sst2": (2, False, 1.6),
    "qqp": (2, True, 1.4),
    "qnli": (2, True, 1.2),
    "mnli": (3, True, 1.0),
    "mrpc": (2, True, 1.1),
    "stsb": (3, True, 1.2),
}

_SEP_TOKEN = 1  # token 0 is PAD, token 1 is SEP


def _class_distributions(rng, num_classes, vocab_size, sharpness):
    """Dirichlet-ish class-conditional token distributions over the vocab."""
    logits = rng.normal(0, sharpness, (num_classes, vocab_size - 2))
    probs = np.exp(logits)
    probs /= probs.sum(axis=1, keepdims=True)
    return probs


def make_text_task(name, vocab_size=64, seq_len=16, train_size=384,
                   test_size=192, seed=0):
    """Generate (train, test) ArrayDatasets of token sequences for ``name``."""
    if name not in GLUE_TASKS:
        raise ValueError("unknown task %r (known: %s)" % (name, sorted(GLUE_TASKS)))
    num_classes, pair_task, sharpness = GLUE_TASKS[name]
    task_seed = zlib.crc32(name.encode()) % 10000  # deterministic per task
    rng = np.random.default_rng(seed + task_seed)
    dists = _class_distributions(rng, num_classes, vocab_size, sharpness)

    def sample(n, offset):
        local = np.random.default_rng(seed + offset + task_seed)
        labels = local.integers(0, num_classes, n)
        tokens = np.zeros((n, seq_len), dtype=np.int64)
        for i, label in enumerate(labels):
            if pair_task:
                half = seq_len // 2
                # Segment A always from class distribution; segment B from the
                # same class (related) or mixed (class controls relatedness).
                seg_a = local.choice(vocab_size - 2, half - 1, p=dists[label]) + 2
                seg_b = local.choice(vocab_size - 2, seq_len - half,
                                     p=dists[label]) + 2
                tokens[i, : half - 1] = seg_a
                tokens[i, half - 1] = _SEP_TOKEN
                tokens[i, half:] = seg_b
            else:
                tokens[i] = local.choice(vocab_size - 2, seq_len,
                                         p=dists[label]) + 2
        return ArrayDataset(tokens, labels)

    return sample(train_size, 1), sample(test_size, 2)


def glue_like_suite(vocab_size=64, seq_len=16, train_size=384, test_size=192,
                    seed=0):
    """All six tasks as {name: (train, test, num_classes)}."""
    suite = {}
    for name, (num_classes, _, _) in GLUE_TASKS.items():
        train, test = make_text_task(name, vocab_size, seq_len, train_size,
                                     test_size, seed)
        suite[name] = (train, test, num_classes)
    return suite
