"""Synthetic image-classification datasets (substitute for CIFAR/MNIST/...).

The paper's accuracy experiments need datasets that (a) a small CNN can
learn, (b) degrade gracefully under activation quantization, and (c) offer a
difficulty ladder (CIFAR-10 easier than CIFAR-100 easier than ImageNet).
Each class here is a smooth random template (low-frequency Gaussian field);
samples are the template plus random spatial shift, per-sample gain, and
pixel noise. Difficulty is controlled by class count, template similarity,
and noise level — mirroring the harder-dataset => larger-VQ-loss trend the
paper reports.
"""

from __future__ import annotations

import numpy as np

from ..nn.data import ArrayDataset

__all__ = [
    "SyntheticImageSpec",
    "make_image_dataset",
    "cifar10_like",
    "cifar100_like",
    "mnist_like",
    "tiny_imagenet_like",
    "imagenet_like",
]


class SyntheticImageSpec:
    """Configuration of one synthetic image task."""

    def __init__(self, name, num_classes, channels, image_size, noise,
                 template_mix, train_size, test_size, seed):
        self.name = name
        self.num_classes = num_classes
        self.channels = channels
        self.image_size = image_size
        self.noise = noise
        self.template_mix = template_mix
        self.train_size = train_size
        self.test_size = test_size
        self.seed = seed


def _smooth_field(rng, channels, size, cutoff=3):
    """Low-frequency random field: random spectrum below ``cutoff``."""
    spectrum = np.zeros((channels, size, size), dtype=np.complex128)
    spectrum[:, :cutoff, :cutoff] = rng.normal(
        size=(channels, cutoff, cutoff)
    ) + 1j * rng.normal(size=(channels, cutoff, cutoff))
    field = np.fft.ifft2(spectrum, axes=(-2, -1)).real
    field /= np.abs(field).max() + 1e-12
    return field


def make_image_dataset(spec):
    """Generate (train, test) ArrayDatasets from a SyntheticImageSpec.

    Inputs have shape (n, channels, size, size) normalised to ~N(0, 1).
    """
    rng = np.random.default_rng(spec.seed)
    templates = np.stack([
        _smooth_field(rng, spec.channels, spec.image_size)
        for _ in range(spec.num_classes)
    ])
    if spec.template_mix > 0:
        # Blend templates toward their mean to make classes more confusable.
        mean = templates.mean(axis=0, keepdims=True)
        templates = (1 - spec.template_mix) * templates + spec.template_mix * mean

    def sample(n, seed_offset):
        local = np.random.default_rng(spec.seed + seed_offset)
        labels = local.integers(0, spec.num_classes, n)
        images = templates[labels].copy()
        # Random circular shift per sample (translation invariance pressure).
        shifts = local.integers(-2, 3, size=(n, 2))
        for i in range(n):
            images[i] = np.roll(images[i], tuple(shifts[i]), axis=(1, 2))
        gains = local.uniform(0.8, 1.2, size=(n, 1, 1, 1))
        images = images * gains + local.normal(0, spec.noise, images.shape)
        std = images.std() + 1e-12
        return ArrayDataset(images / std, labels)

    return sample(spec.train_size, 1), sample(spec.test_size, 2)


def cifar10_like(train_size=512, test_size=256, image_size=12, seed=0):
    """10-class, 3-channel task standing in for CIFAR-10."""
    spec = SyntheticImageSpec("cifar10-like", 10, 3, image_size, noise=0.25,
                              template_mix=0.2, train_size=train_size,
                              test_size=test_size, seed=seed)
    return make_image_dataset(spec)


def cifar100_like(train_size=512, test_size=256, image_size=12, seed=1):
    """20-class harder task standing in for CIFAR-100 (more confusable)."""
    spec = SyntheticImageSpec("cifar100-like", 20, 3, image_size, noise=0.35,
                              template_mix=0.45, train_size=train_size,
                              test_size=test_size, seed=seed)
    return make_image_dataset(spec)


def mnist_like(train_size=512, test_size=256, image_size=16, seed=2):
    """10-class single-channel easy task standing in for MNIST."""
    spec = SyntheticImageSpec("mnist-like", 10, 1, image_size, noise=0.15,
                              template_mix=0.0, train_size=train_size,
                              test_size=test_size, seed=seed)
    return make_image_dataset(spec)


def tiny_imagenet_like(train_size=512, test_size=256, image_size=14, seed=3):
    """30-class task standing in for Tiny-ImageNet."""
    spec = SyntheticImageSpec("tiny-imagenet-like", 30, 3, image_size,
                              noise=0.35, template_mix=0.5,
                              train_size=train_size, test_size=test_size,
                              seed=seed)
    return make_image_dataset(spec)


def imagenet_like(train_size=640, test_size=320, image_size=14, seed=4):
    """40-class hardest task standing in for ImageNet."""
    spec = SyntheticImageSpec("imagenet-like", 40, 3, image_size, noise=0.4,
                              template_mix=0.55, train_size=train_size,
                              test_size=test_size, seed=seed)
    return make_image_dataset(spec)
