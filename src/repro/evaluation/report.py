"""Plain-text table formatting for benchmark and example output."""

from __future__ import annotations

__all__ = ["format_table", "format_ratio"]


def format_table(rows, columns=None, floatfmt="%.3g", title=None):
    """Render a list of dicts as an aligned text table.

    ``columns`` fixes the column order; defaults to the first row's keys.
    """
    if not rows:
        return "(empty table)"
    columns = list(columns or rows[0].keys())

    def fmt(value):
        if isinstance(value, float):
            return floatfmt % value
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def format_ratio(value, reference):
    """'3.2x' style ratio string."""
    if reference == 0:
        return "inf"
    return "%.2fx" % (value / reference)
