"""Plain-text table formatting for benchmark and example output."""

from __future__ import annotations

__all__ = ["format_table", "format_ratio", "format_serving_summary"]


def format_table(rows, columns=None, floatfmt="%.3g", title=None):
    """Render a list of dicts as an aligned text table.

    ``columns`` fixes the column order; defaults to the first row's keys.
    """
    if not rows:
        return "(empty table)"
    columns = list(columns or rows[0].keys())

    def fmt(value):
        if isinstance(value, float):
            return floatfmt % value
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def format_ratio(value, reference):
    """'3.2x' style ratio string."""
    if reference == 0:
        return "inf"
    return "%.2fx" % (value / reference)


def format_serving_summary(summary, title="serving metrics"):
    """Render a :meth:`repro.serving.ServingMetrics.summary` dict.

    Measured host latency sits next to the simulator's predicted LUT-DLA
    batch latency when the summary carries ``predicted_ms`` — the serving
    runtime's predicted-vs-measured report.
    """
    rows = [
        {"metric": "requests", "value": summary.get("requests", 0)},
        {"metric": "batches", "value": summary.get("batches", 0)},
        {"metric": "mean batch size",
         "value": summary.get("mean_batch_size", 0.0)},
        {"metric": "throughput (req/s)",
         "value": summary.get("requests_per_s", 0.0)},
        {"metric": "latency p50 (ms)", "value": summary.get("p50_ms", 0.0)},
        {"metric": "latency p90 (ms)", "value": summary.get("p90_ms", 0.0)},
        {"metric": "latency p99 (ms)", "value": summary.get("p99_ms", 0.0)},
        {"metric": "batch exec mean (ms)",
         "value": summary.get("mean_batch_ms", 0.0)},
    ]
    if "predicted_ms" in summary:
        rows.append({"metric": "predicted LUT-DLA cycles/batch",
                     "value": summary["predicted_cycles"]})
        rows.append({"metric": "predicted LUT-DLA batch (ms)",
                     "value": summary["predicted_ms"]})
    if "measured_over_predicted" in summary:
        rows.append({"metric": "measured / predicted",
                     "value": format_ratio(
                         summary["measured_over_predicted"], 1.0)})
    return format_table(rows, columns=["metric", "value"], title=title)
