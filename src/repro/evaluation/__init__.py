"""End-to-end latency / energy evaluation and reporting."""

from .energy import EnergyBreakdown, gemm_energy_breakdown
from .report import format_ratio, format_serving_summary, format_table
from .runner import (
    EvalResult,
    end_to_end_comparison,
    evaluate_baseline,
    evaluate_design,
)

__all__ = [
    "EnergyBreakdown",
    "gemm_energy_breakdown",
    "EvalResult",
    "evaluate_design",
    "evaluate_baseline",
    "end_to_end_comparison",
    "format_table",
    "format_ratio",
    "format_serving_summary",
]
