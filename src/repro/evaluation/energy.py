"""First-principles energy accounting for one simulated GEMM.

``evaluate_design`` reports energy as average power x time. This module
provides the finer-grained alternative: count every SRAM access, dPE
comparison and DRAM transfer a GEMM performs and price each with the
component models — the methodology a synthesis-based power report
approximates. The two estimates should agree within the calibration
factor of the power model; ``test_evaluation_energy.py`` asserts that.

DRAM transfer energy defaults to 15 pJ/bit (typical DDR4 system energy).
"""

from __future__ import annotations

import numpy as np

from ..hw.dpe import dpe_cost
from ..hw.memory import SRAM

__all__ = ["EnergyBreakdown", "gemm_energy_breakdown"]

_DRAM_PJ_PER_BIT = 15.0


class EnergyBreakdown:
    """Per-component energy (mJ) of one GEMM execution."""

    def __init__(self, similarity_mj, lut_read_mj, scratchpad_mj,
                 index_mj, dram_mj, leakage_mj):
        self.similarity_mj = similarity_mj
        self.lut_read_mj = lut_read_mj
        self.scratchpad_mj = scratchpad_mj
        self.index_mj = index_mj
        self.dram_mj = dram_mj
        self.leakage_mj = leakage_mj

    @property
    def total_mj(self):
        return (self.similarity_mj + self.lut_read_mj + self.scratchpad_mj
                + self.index_mj + self.dram_mj + self.leakage_mj)

    def as_dict(self):
        return {
            "similarity_mj": self.similarity_mj,
            "lut_read_mj": self.lut_read_mj,
            "scratchpad_mj": self.scratchpad_mj,
            "index_mj": self.index_mj,
            "dram_mj": self.dram_mj,
            "leakage_mj": self.leakage_mj,
            "total_mj": self.total_mj,
        }

    def __repr__(self):
        return "EnergyBreakdown(total=%.4f mJ)" % self.total_mj


def gemm_energy_breakdown(workload, design, sim_result=None,
                          dram_pj_per_bit=_DRAM_PJ_PER_BIT):
    """Count-and-price energy of one GEMM on a LUT-DLA design.

    Parameters
    ----------
    workload:
        A :class:`GemmWorkload`.
    design:
        A :class:`repro.hw.LUTDLADesign` (provides component configs).
    sim_result:
        Optional :class:`SimResult`; when given, leakage is integrated
        over the simulated wall-clock, otherwise over the lookup-work
        lower bound.
    """
    m, k, n = workload.m, workload.k, workload.n
    v, c = design.v, design.c
    nc = int(np.ceil(k / v))
    tn_eff = min(design.tn, n)
    no = int(np.ceil(n / tn_eff))
    imm = design.imm_config

    # --- access counts -------------------------------------------------
    comparisons = m * nc * c          # every row x subspace against c dPEs
    lut_reads = m * nc * no           # one row-read per lookup
    scratch_accesses = 2 * lut_reads  # read-modify-write accumulation
    index_reads = lut_reads           # one index fetch per lookup
    index_writes = m * nc             # each index written once
    dram_bits = nc * no * c * tn_eff * imm.lut_bits  # streamed LUT slices
    dram_bits += m * k * 16           # activations in (16-bit)
    dram_bits += m * n * imm.acc_bits  # results out

    # --- per-access energies -------------------------------------------
    dpe = dpe_cost(v, design.metric, design.precision, design.node)
    lut_sram = SRAM(2 * c * tn_eff * imm.lut_bits,
                    width=tn_eff * imm.lut_bits, node=design.node)
    scratch = SRAM(imm.m_tile * tn_eff * imm.acc_bits,
                   width=tn_eff * imm.acc_bits, node=design.node)
    idx = SRAM(max(imm.m_tile * imm.index_bits, 64), width=imm.index_bits,
               node=design.node)

    pj = 1e-12 * 1e3  # pJ -> mJ
    similarity_mj = comparisons * dpe.energy_pj * pj
    lut_read_mj = lut_reads * lut_sram.read_energy_pj() * pj
    scratchpad_mj = scratch_accesses * scratch.read_energy_pj() * 1.1 * pj
    index_mj = (index_reads * idx.read_energy_pj()
                + index_writes * idx.write_energy_pj()) * pj
    dram_mj = dram_bits * dram_pj_per_bit * pj

    if sim_result is not None:
        seconds = sim_result.total_cycles / design.frequency_hz
    else:
        seconds = lut_reads / design.frequency_hz
    leak_mw = (lut_sram.leakage_mw() + scratch.leakage_mw()
               + idx.leakage_mw()) * design.n_imm
    leakage_mj = leak_mw * seconds

    return EnergyBreakdown(similarity_mj, lut_read_mj, scratchpad_mj,
                           index_mj, dram_mj, leakage_mj)
