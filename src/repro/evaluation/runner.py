"""End-to-end evaluation runner (Figs. 13-14).

Given a set of per-layer GEMM workloads (a model) and a hardware target,
produce latency, throughput, energy and the derived efficiency metrics.
LUT-DLA targets run through the cycle-accurate simulator; NVDLA / Gemmini /
PQA targets use their analytic models.
"""

from __future__ import annotations

from ..baselines.gemmini import GemminiModel
from ..baselines.nvdla import NVDLAModel
from ..baselines.pqa import PQAModel
from ..hw.accelerator import LUTDLADesign
from ..sim.engine import SimConfig, simulate_workloads

__all__ = ["EvalResult", "evaluate_design", "evaluate_baseline",
           "end_to_end_comparison"]


class EvalResult:
    """Latency / energy / efficiency of one (model, hardware) pair."""

    def __init__(self, name, cycles, seconds, energy_mj, area_mm2, power_mw,
                 macs):
        self.name = name
        self.cycles = float(cycles)
        self.seconds = float(seconds)
        self.energy_mj = float(energy_mj)
        self.area_mm2 = float(area_mm2)
        self.power_mw = float(power_mw)
        self.macs = float(macs)

    @property
    def throughput_gops(self):
        """Achieved effective throughput over the whole model."""
        return 2.0 * self.macs / self.seconds / 1e9 if self.seconds else 0.0

    @property
    def area_efficiency(self):
        """Achieved GOPS per mm^2."""
        return self.throughput_gops / self.area_mm2

    @property
    def energy_efficiency(self):
        """Achieved GOPS per mW."""
        return self.throughput_gops / self.power_mw

    def normalized_to(self, other):
        """Speedup / energy / efficiency ratios vs a reference result."""
        return {
            "speedup": other.seconds / self.seconds,
            "energy_ratio": other.energy_mj / self.energy_mj,
            "area_eff_ratio": self.area_efficiency / other.area_efficiency,
            "energy_eff_ratio": self.energy_efficiency
            / other.energy_efficiency,
        }

    def __repr__(self):
        return ("EvalResult(%s: %.3f ms, %.3f mJ, %.0f GOPS)"
                % (self.name, self.seconds * 1e3, self.energy_mj,
                   self.throughput_gops))


def evaluate_design(design, workloads, bandwidth_gbps=25.6, name=None):
    """Run ``workloads`` on a LUT-DLA design via the cycle simulator.

    The dPE datapath fixes the vector length, so each workload is re-mapped
    to the design's (v, c) — the model deployed on this design would have
    been LUTBoost-trained with exactly those parameters.
    """
    from ..lutboost.lut_layers import GemmWorkload

    if not isinstance(design, LUTDLADesign):
        raise TypeError("expected LUTDLADesign")
    mapped = [
        w if (w.v == design.v and w.c == design.c) else GemmWorkload(
            w.m, w.k, w.n, design.v, design.c, design.metric, name=w.name)
        for w in workloads
    ]
    config = SimConfig.from_design(design, bandwidth_gbps)
    _, cycles = simulate_workloads(mapped, config)
    seconds = cycles / design.frequency_hz
    energy_mj = design.power_mw() * seconds  # mW x s = mJ
    macs = sum(w.macs for w in workloads)
    return EvalResult(name or design.name, cycles, seconds, energy_mj,
                      design.area_mm2(), design.power_mw(), macs)


def evaluate_baseline(model, workloads, name=None):
    """Run ``workloads`` on an NVDLA / Gemmini / PQA analytic model."""
    if isinstance(model, (NVDLAModel, GemminiModel)):
        cycles = model.run_cycles(workloads)
        seconds = cycles / model.frequency_hz
        energy_mj = model.power_mw * seconds  # mW x s = mJ
        area = model.area_mm2
        power = model.power_mw
    elif isinstance(model, PQAModel):
        cycles = model.run_cycles(workloads)
        seconds = cycles / model.frequency_hz
        # PQA has no published PPA; energy/area comparisons use cycles and
        # on-chip memory (Table IX), so report zeros here.
        energy_mj = 0.0
        area = 0.0
        power = 0.0
    else:
        raise TypeError("unsupported baseline model %r" % (model,))
    macs = sum(w.macs for w in workloads)
    return EvalResult(name or model.name, cycles, seconds, energy_mj, area,
                      power, macs)


def end_to_end_comparison(model_workloads_map, designs, baselines,
                          bandwidth_gbps=25.6):
    """Full Fig. 13 grid: {model: {hardware: EvalResult}}.

    ``model_workloads_map``: {model_name: [GemmWorkload, ...]};
    ``designs``: LUT-DLA designs; ``baselines``: analytic baseline models.
    """
    table = {}
    for model_name, workloads in model_workloads_map.items():
        row = {}
        for design in designs:
            row[design.name] = evaluate_design(design, workloads,
                                               bandwidth_gbps)
        for baseline in baselines:
            row[baseline.name] = evaluate_baseline(baseline, workloads)
        table[model_name] = row
    return table
