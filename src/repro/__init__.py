"""repro — reproduction of LUT-DLA (HPCA 2025).

Public API layout:

- :mod:`repro.nn` — numpy autograd training substrate.
- :mod:`repro.vq` — vector quantization core (k-means, codebooks, LUT AMM).
- :mod:`repro.lutboost` — LUTBoost multistage model converter.
- :mod:`repro.models` / :mod:`repro.datasets` — evaluation model zoo and
  synthetic datasets.
- :mod:`repro.hw` — LUT-DLA hardware area/power/memory cost models.
- :mod:`repro.sim` — cycle-accurate LUT-Stationary dataflow simulator.
- :mod:`repro.dse` — co-design space exploration engine (Algorithm 2).
- :mod:`repro.baselines` — ALU/NVDLA/Gemmini/PQA comparison models.
- :mod:`repro.evaluation` — end-to-end latency / energy runner.
- :mod:`repro.serving` — batched online inference runtime (plan compiler,
  dynamic micro-batching server, throughput/latency metrics).
- :mod:`repro.gen` — autoregressive generation (bucketed prefill plans,
  KV-cached decode steps, continuous-batching token streaming).
- :mod:`repro.cluster` — multi-process sharded serving (shared plan
  store, least-work router, asyncio TCP front-end).
"""

__version__ = "1.0.0"
